"""The reservation-based proportion/period scheduler (RBS).

This is the substrate described in Section 3.1 of the paper: every
thread registered with the policy carries a *proportion* (parts per
thousand of the CPU) and a *period* (microseconds here, milliseconds in
the paper's interface).  Within each period the thread may consume
``proportion/1000 * period`` microseconds of CPU; once it has, it is
throttled until the next period begins.

Dispatch ordering follows the paper's goodness construction:

* reservation threads always beat best-effort threads ("our policy
  calculates goodness to ensure that threads it controls have higher
  goodness than jobs under other policies"), and
* among reservation threads, shorter periods win ("jobs with shorter
  periods have higher goodness values"), which is exactly
  rate-monotonic scheduling.

Enforcement happens only at dispatch time (the paper's prototype cannot
preempt mid-quantum), so a thread may overrun its allocation by up to
one dispatch interval.  That quantisation error is discussed in
Section 4.3; setting ``enforce_within_slice=True`` enables the
microsecond-accurate enforcement the authors propose there, and the
ablation benchmarks compare the two.

Incremental dispatch
--------------------
The dispatcher is incremental: instead of re-scanning and re-sorting
every registered thread per pick (O(n) per simulated millisecond), it
maintains the run-queue structures of :mod:`repro.sched.base` —

* a rate-monotonic ready heap of runnable, unexhausted reservations
  keyed ``(period_us, -proportion_ppt, tid)``, whose minimum is the
  head of the sort it replaces (tids make the order total);
* a replenishment heap ``(period_end, tid)`` of runnable, throttled
  reservations, which answers :meth:`next_wakeup` and replenishes due
  threads without touching the rest;
* a pending deque of threads whose eligibility changed (woke up,
  exhausted their budget, had their reservation re-sized) and that are
  re-examined *at pick time*, so period windows roll forward at the
  exact virtual times the scan-based code rolled them — which keeps
  deadline-miss accounting and pick order bit-identical;
* running aggregates for :meth:`total_reserved_ppt` and
  :meth:`deadline_misses`, maintained at set/clear/charge time.

Period windows of threads the dispatcher has no reason to examine roll
*lazily*: :meth:`Reservation.advance_to` composes, so a later roll
reaches the same state an eager roll would have.  Every reservation
with recorded unmet demand (``wanted_more``) is kept fresh at the same
pick/refresh points the scan used, so deadline misses are realised at
identical times; the one observable difference is the diagnostic
``periods_elapsed``/window-position of *demand-free* reservations
between examinations (``tests/test_sched_rbs_differential.py`` pins
down exactly this contract against the scan implementation).

Best-effort threads keep the historical cursor-based round-robin over
the registration-ordered candidate list (the cursor arithmetic depends
on the candidate count per pick, so any reordering — e.g. a plain FIFO
— would change dispatch traces).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.sched.base import LazyMinHeap, Scheduler
from repro.sim.errors import SchedulerError
from repro.sim.thread import SchedulingPolicy, SimThread, ThreadState

#: Proportions are expressed in parts per thousand, as in the paper.
PROPORTION_SCALE = 1_000

#: Default period assigned by the controller when none is known (30 ms).
DEFAULT_PERIOD_US = 30_000


@dataclass
class Reservation:
    """Per-thread reservation state.

    Attributes
    ----------
    proportion_ppt:
        Parts-per-thousand of the CPU the thread may use each period.
    period_us:
        Length of the repeating allocation period.
    period_start:
        Start of the current period (absolute microseconds).
    used_in_period_us:
        CPU consumed since ``period_start``.
    deadline_misses:
        Number of periods in which the scheduler could not deliver the
        full allocation (the thread was runnable, wanted CPU, and did
        not receive its allocation before the period ended).
    periods_elapsed:
        Total periods that have passed since the reservation was made.
    """

    proportion_ppt: int
    period_us: int
    period_start: int = 0
    used_in_period_us: int = 0
    deadline_misses: int = 0
    periods_elapsed: int = 0
    total_allocated_us: int = 0
    wanted_more: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.proportion_ppt <= PROPORTION_SCALE:
            raise SchedulerError(
                f"proportion must be in [0, {PROPORTION_SCALE}] parts per "
                f"thousand, got {self.proportion_ppt}"
            )
        if self.period_us <= 0:
            raise SchedulerError(
                f"period must be positive, got {self.period_us}us"
            )

    @property
    def allocation_us(self) -> int:
        """CPU budget per period in microseconds."""
        return self.period_us * self.proportion_ppt // PROPORTION_SCALE

    @property
    def remaining_us(self) -> int:
        """CPU budget left in the current period."""
        return max(0, self.allocation_us - self.used_in_period_us)

    @property
    def exhausted(self) -> bool:
        """Whether the current period's budget has been used up."""
        return self.used_in_period_us >= self.allocation_us

    def period_end(self) -> int:
        """Absolute time at which the current period ends."""
        return self.period_start + self.period_us

    def advance_to(self, now: int) -> int:
        """Roll the period window forward so it contains ``now``.

        Returns the number of complete periods that elapsed.  On each
        period boundary the usage counter is reset; if the thread wanted
        more CPU than it received in a period where it was runnable, a
        deadline miss is recorded.
        """
        if now < self.period_start:
            return 0
        elapsed = (now - self.period_start) // self.period_us
        if elapsed <= 0:
            return 0
        if self.wanted_more:
            # The thread hit its budget and still wanted CPU this
            # period: its reservation was too small for its demand.
            self.deadline_misses += 1
        self.period_start += elapsed * self.period_us
        self.periods_elapsed += elapsed
        self.used_in_period_us = 0
        self.wanted_more = False
        return elapsed


class ReservationScheduler(Scheduler):
    """Proportion/period dispatcher with rate-monotonic ordering.

    Parameters
    ----------
    enforce_within_slice:
        When ``True``, a thread's slice is additionally capped by its
        remaining allocation, eliminating the one-dispatch-interval
        overrun of the paper's prototype (Section 4.3 improvement).
    best_effort_slice_us:
        Time slice handed to best-effort threads when no reservation
        thread is eligible.
    """

    SCHED_KEY = "rbs"

    #: Everything a pick reads (see the epoch-contract checker): the
    #: two heaps, the deferred-examination queue and its membership
    #: set, the best-effort map and cursor, the stray/unmarked demand
    #: sets, the reservation mirror, and the running aggregates.
    PICK_RELEVANT_STATE = frozenset(
        {
            "_reservations",
            "_rm_heap",
            "_replenish",
            "_pending",
            "_pending_set",
            "_best_effort",
            "_best_effort_cursor",
            "_wanted_stray",
            "_unmarked",
            "_reserved_ppt_total",
            "_deadline_miss_total",
        }
    )

    EPOCH_EXEMPT = {
        "on_remove": (
            "only reached from remove_thread, which bumps the epoch "
            "before delegating to this hook"
        ),
        "_advance": (
            "pick/refresh-time period roll, a pure function of virtual "
            "time; its realisation instants are bounded by "
            "preemption_horizon, so no batch can span one"
        ),
        "_classify": (
            "pick-time reclassification of a deferred thread; runs only "
            "from real picks/refresh (preemption_horizon returns now "
            "while work is deferred), never inside a batch"
        ),
        "_service_queues": (
            "pick/refresh-time queue service; deferred work disables "
            "batching via preemption_horizon, so no in-flight batch can "
            "observe these mutations"
        ),
        "_rebuild_best_effort": (
            "content-preserving rebuild of the best-effort map in "
            "registration order; every caller that changes membership "
            "bumps the epoch itself"
        ),
        "pick_next": (
            "pick-time mutations (fairness cursor, time-driven service); "
            "batched picks replay the cursor via note_batched_picks and "
            "are bounded by preemption_horizon"
        ),
        "note_batched_picks": (
            "replays exactly the cursor mutations the skipped picks "
            "would have made — the mechanism that keeps batching "
            "bit-identical, not a bypass of it"
        ),
    }

    def __init__(
        self,
        *,
        enforce_within_slice: bool = False,
        best_effort_slice_us: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.enforce_within_slice = enforce_within_slice
        self._best_effort_slice_us = best_effort_slice_us
        self._best_effort_cursor = 0
        #: tid -> live reservation (mirror of ``sched_data[SCHED_KEY]``).
        self._reservations: dict[int, Reservation] = {}
        #: Runnable, unexhausted reservations in rate-monotonic order.
        self._rm_heap = LazyMinHeap()
        #: Runnable, throttled reservations keyed by replenishment time.
        self._replenish = LazyMinHeap()
        #: Threads whose eligibility must be re-examined at pick time.
        self._pending: deque[int] = deque()
        self._pending_set: set[int] = set()
        #: Best-effort members (any state), in registration order.
        self._best_effort: dict[int, SimThread] = {}
        #: Reservations with unmet demand recorded (``wanted_more``)
        #: that are *not* covered by the replenishment heap or the
        #: pending queue — a throttled thread that blocked, or one made
        #: eligible again by a proportion raise before its period
        #: rolled.  The scan-based code realised their period rolls (and
        #: thus their deadline misses) at every pick/refresh; this set
        #: is almost always empty, so doing the same stays O(1).
        self._wanted_stray: set[int] = set()
        #: Throttled threads classified by ``refresh`` (which, like the
        #: old full scan's refresh, never records unmet demand); the
        #: next pick marks their ``wanted_more`` exactly as the scan's
        #: per-candidate pass did.
        self._unmarked: set[int] = set()
        #: Running aggregates (see total_reserved_ppt / deadline_misses).
        self._reserved_ppt_total = 0
        self._deadline_miss_total = 0

    # ------------------------------------------------------------------
    # reservation management (the controller's actuation interface)
    # ------------------------------------------------------------------
    def reservation(self, thread: SimThread) -> Optional[Reservation]:
        """The thread's reservation, or ``None`` if it has no reservation."""
        return thread.sched_data.get(self.SCHED_KEY)

    def set_reservation(
        self,
        thread: SimThread,
        proportion_ppt: int,
        period_us: int = DEFAULT_PERIOD_US,
        *,
        now: Optional[int] = None,
    ) -> Reservation:
        """Create or update ``thread``'s proportion/period reservation.

        Updating an existing reservation preserves the current period
        window and usage, matching the paper's "very low overhead to
        change proportion and period": actuation does not reset
        accounting, it simply changes the budget going forward.
        """
        if thread.tid not in self._run_queue:
            raise SchedulerError(
                f"thread {thread.name!r} is not registered with this scheduler"
            )
        proportion_ppt = int(proportion_ppt)
        period_us = int(period_us)
        current = thread.sched_data.get(self.SCHED_KEY)
        if current is None:
            if now is None:
                now = self.kernel.now if self.kernel is not None else 0
            reservation = Reservation(
                proportion_ppt=proportion_ppt,
                period_us=period_us,
                period_start=now,
            )
            thread.sched_data[self.SCHED_KEY] = reservation
            thread.policy = SchedulingPolicy.RESERVATION
            self._best_effort.pop(thread.tid, None)
            self._track_reservation(thread, reservation)
            return reservation
        if (
            proportion_ppt == current.proportion_ppt
            and period_us == current.period_us
        ):
            # The controller re-actuating unchanged values is the common
            # case; nothing about eligibility or ordering moved.
            return current
        # Same bounds (and error messages) as Reservation.__post_init__,
        # without building a throwaway instance on the actuation path.
        if not 0 <= proportion_ppt <= PROPORTION_SCALE:
            raise SchedulerError(
                f"proportion must be in [0, {PROPORTION_SCALE}] parts per "
                f"thousand, got {proportion_ppt}"
            )
        if period_us <= 0:
            raise SchedulerError(
                f"period must be positive, got {period_us}us"
            )
        self._reserved_ppt_total += proportion_ppt - current.proportion_ppt
        # Any proportion change alters the placement weight (and may
        # re-key the ready heap), so in-flight batches and cached
        # placements must be invalidated even when the queue entries
        # themselves stand.
        self.state_epoch += 1
        current.proportion_ppt = proportion_ppt
        if period_us != current.period_us:
            if now is None:
                now = self.kernel.now if self.kernel is not None else 0
            current.period_us = period_us
            current.period_start = now
            current.used_in_period_us = 0
            # The window was reset: route through a full pick-time
            # reclassification (also refreshes any replenishment entry
            # keyed by the old window's end).
            self._reexamine(thread)
        else:
            self._requeue_resized(thread, current)
        return current

    def clear_reservation(self, thread: SimThread) -> None:
        """Demote ``thread`` to best-effort scheduling."""
        thread.sched_data.pop(self.SCHED_KEY, None)
        thread.policy = SchedulingPolicy.BEST_EFFORT
        tid = thread.tid
        reservation = self._reservations.pop(tid, None)
        if reservation is not None:
            self.state_epoch += 1
            self._reserved_ppt_total -= reservation.proportion_ppt
            self._deadline_miss_total -= reservation.deadline_misses
            self._rm_heap.discard(tid)
            self._replenish.discard(tid)
            self._pending_set.discard(tid)
            self._wanted_stray.discard(tid)
            self._unmarked.discard(tid)
        if self.has_thread(thread):
            # Rebuild so best-effort candidates keep registration order
            # (a demoted thread must not move to the back of the line).
            self._rebuild_best_effort()

    def total_reserved_ppt(self) -> int:
        """Sum of all live reservations' proportions (overload detector).

        Maintained incrementally at set/clear/add/remove time — O(1).
        """
        return self._reserved_ppt_total

    def capacity_ppt(self) -> int:
        """Total schedulable capacity: one ``PROPORTION_SCALE`` per CPU.

        Scales with the number of *online* CPUs, so a simulated CPU
        failure immediately shrinks what admission control and the
        degradation machinery may hand out.  With every CPU online
        (the common case) this equals ``n_cpus * PROPORTION_SCALE``.
        """
        return self.online_cpu_count * PROPORTION_SCALE

    def deadline_misses(self) -> int:
        """Total deadline misses across all reservation threads.

        Maintained incrementally: every period-window roll performed by
        the scheduler folds new misses into the running total — O(1).
        """
        return self._deadline_miss_total

    # ------------------------------------------------------------------
    # internal bookkeeping
    # ------------------------------------------------------------------
    def _track_reservation(self, thread: SimThread, reservation: Reservation) -> None:
        """Start tracking ``reservation`` in the aggregate counters and
        queue the thread for pick-time classification."""
        self._reservations[thread.tid] = reservation
        self._reserved_ppt_total += reservation.proportion_ppt
        self._deadline_miss_total += reservation.deadline_misses
        self._reexamine(thread)

    def _reexamine(self, thread: SimThread) -> None:
        """Invalidate ``thread``'s queue entries and defer its
        reclassification to the next pick (where ``now`` is known)."""
        tid = thread.tid
        self.state_epoch += 1
        self._rm_heap.discard(tid)
        self._replenish.discard(tid)
        if tid not in self._pending_set:
            self._pending_set.add(tid)
            self._pending.append(tid)

    def _requeue_resized(self, thread: SimThread, reservation: Reservation) -> None:
        """Re-queue after a proportion-only change (period untouched).

        The common controller actuation.  Where the routing outcome is
        already determined it is applied in place, skipping the deferred
        classification:

        * already queued for examination — nothing to do, the pending
          pass reads the fresh values;
        * on the ready heap and still unexhausted — only the heap key
          changed (``exhausted`` can only flip towards eligible when the
          window rolls, so an unexhausted stale window stays
          unexhausted);
        * throttled and still exhausted — the replenishment key
          (``period_end``) did not move, so the entry stands.

        Every other combination (flipped exhaustion, blocked threads)
        defers to pick time exactly like the scan-based code did.
        """
        tid = thread.tid
        if tid in self._pending_set:
            return
        exhausted = reservation.used_in_period_us >= (
            reservation.period_us * reservation.proportion_ppt // PROPORTION_SCALE
        )
        if tid in self._rm_heap:
            if not exhausted:
                # The rate-monotonic key changed: invalidate any
                # in-flight run-to-horizon batch.
                self.state_epoch += 1
                self._rm_heap.push(
                    tid,
                    (reservation.period_us, -reservation.proportion_ppt, tid),
                )
            else:
                self._reexamine(thread)
            return
        if tid in self._replenish:
            if not exhausted:
                self._reexamine(thread)
            return
        state = thread.state
        if state is ThreadState.READY or state is ThreadState.RUNNING:
            self._reexamine(thread)

    def _rebuild_best_effort(self) -> None:
        reservations = self._reservations
        self._best_effort = {
            t.tid: t for t in self.threads() if t.tid not in reservations
        }

    def _advance(self, tid: int, reservation: Reservation, now: int) -> None:
        """Roll ``reservation`` forward, folding deadline misses into
        the running aggregate."""
        before = reservation.deadline_misses
        if reservation.advance_to(now):
            # A roll consumes wanted_more, so the thread (if tracked as
            # a stray) no longer needs pick-time realisation.
            self._wanted_stray.discard(tid)
        after = reservation.deadline_misses
        if after != before:
            self._deadline_miss_total += after - before

    def _classify(self, tid: int, now: int, mark_wanted: bool) -> None:
        """(Re)classify one reservation thread at a service point.

        Rolls the period window to ``now`` exactly as the historical
        scan did, then routes the thread to the rate-monotonic heap
        (eligible) or the replenishment heap (throttled).

        ``mark_wanted`` distinguishes the two historical service
        points: the *pick* scan recorded unmet demand
        (``wanted_more = True``, the flag that turns into a deadline
        miss at the next period boundary) for every runnable exhausted
        candidate, while ``refresh`` only advanced windows.  A thread
        classified as throttled from refresh therefore stays unmarked
        and is recorded for marking at the next pick.
        """
        thread = self._run_queue.get(tid)
        if thread is None:
            return
        reservation = self._reservations.get(tid)
        if reservation is None:
            return
        if not thread.state.is_runnable:
            # Blocked/sleeping: stays off both queues; on_ready will
            # queue a fresh examination when it wakes.  Pending unmet
            # demand keeps being realised through the stray set.
            if reservation.wanted_more:
                self._wanted_stray.add(tid)
            return
        self._advance(tid, reservation, now)
        if reservation.exhausted:
            if mark_wanted:
                reservation.wanted_more = True
                self._unmarked.discard(tid)
            elif not reservation.wanted_more:
                self._unmarked.add(tid)
            self._wanted_stray.discard(tid)
            self._replenish.push(tid, (reservation.period_end(), tid))
        else:
            if reservation.wanted_more:
                # Eligible again before the window rolled (proportion
                # raised mid-period): the recorded demand still turns
                # into a miss at the next roll, which the scan realised
                # at every pick — track it so we do too.
                self._wanted_stray.add(tid)
            self._rm_heap.push(
                tid,
                (reservation.period_us, -reservation.proportion_ppt, tid),
            )

    def _service_queues(
        self, now: int, *, mark_wanted: bool, include_blocked: bool = False
    ) -> None:
        """Process deferred examinations and due replenishments.

        The flags mirror the scan-based realisation points: picks
        advanced only runnable threads and recorded their unmet demand
        (``mark_wanted``); ``refresh`` (the kernel's idle path)
        advanced every reservation — including blocked ones — but
        never marked demand.
        """
        if not self._unmarked and not self._pending and not self._wanted_stray:
            # Fast path for the common steady state: nothing deferred,
            # so only a due replenishment can require service.
            entry = self._replenish.peek()
            if entry is None or entry[0] > now:
                return
        if mark_wanted and self._unmarked:
            # Throttled threads that were last examined by refresh: the
            # scan would record their unmet demand at this pick.
            # repro-lint: disable=determinism -- per-tid flag updates on each thread's own reservation; no cross-thread ordering effect
            for tid in list(self._unmarked):
                self._unmarked.discard(tid)
                reservation = self._reservations.get(tid)
                thread = self._run_queue.get(tid)
                if reservation is None or thread is None:
                    continue
                if not thread.state.is_runnable:
                    continue
                self._advance(tid, reservation, now)
                if reservation.exhausted:
                    reservation.wanted_more = True
                # A rolled, no-longer-exhausted thread keeps its (now
                # stale, already due) replenishment entry; it is popped
                # and re-routed to the ready heap just below.
        pending = self._pending
        if pending:
            pending_set = self._pending_set
            while pending:
                tid = pending.popleft()
                if tid in pending_set:
                    pending_set.discard(tid)
                    self._classify(tid, now, mark_wanted)
        replenish = self._replenish
        while True:
            entry = replenish.peek()
            if entry is None or entry[0] > now:
                break
            replenish.pop()
            self._classify(entry[1], now, mark_wanted)
        if self._wanted_stray:
            # repro-lint: disable=determinism -- independent per-tid period rolls; each touches only its own reservation
            for tid in list(self._wanted_stray):
                reservation = self._reservations.get(tid)
                thread = self._run_queue.get(tid)
                if reservation is None or thread is None:
                    self._wanted_stray.discard(tid)
                    continue
                if include_blocked or thread.state.is_runnable:
                    self._advance(tid, reservation, now)

    # ------------------------------------------------------------------
    # policy hooks
    # ------------------------------------------------------------------
    def on_add(self, thread: SimThread) -> None:
        reservation = self.reservation(thread)
        if reservation is None and thread.policy is SchedulingPolicy.RESERVATION:
            # A thread that registers with the RBS but has not yet been
            # assigned a proportion starts with a zero reservation at the
            # default period; the controller raises it on its next pass.
            now = self.kernel.now if self.kernel is not None else 0
            reservation = Reservation(
                proportion_ppt=0,
                period_us=DEFAULT_PERIOD_US,
                period_start=now,
            )
            thread.sched_data[self.SCHED_KEY] = reservation
        if reservation is not None:
            self._track_reservation(thread, reservation)
        else:
            # Registration appends, so insertion order stays exact.
            self._best_effort[thread.tid] = thread

    def on_remove(self, thread: SimThread) -> None:
        tid = thread.tid
        reservation = self._reservations.pop(tid, None)
        if reservation is not None:
            self._reserved_ppt_total -= reservation.proportion_ppt
            self._deadline_miss_total -= reservation.deadline_misses
        self._rm_heap.discard(tid)
        self._replenish.discard(tid)
        self._pending_set.discard(tid)
        self._wanted_stray.discard(tid)
        self._unmarked.discard(tid)
        self._best_effort.pop(tid, None)

    def on_ready(self, thread: SimThread, now: int) -> None:
        super().on_ready(thread, now)
        tid = thread.tid
        if (
            tid in self._reservations
            and tid not in self._rm_heap
            and tid not in self._replenish
        ):
            self._reexamine(thread)

    def on_block(self, thread: SimThread, now: int) -> None:
        super().on_block(thread, now)
        tid = thread.tid
        reservation = self._reservations.get(tid)
        if reservation is not None:
            self._rm_heap.discard(tid)
            self._replenish.discard(tid)
            self._pending_set.discard(tid)
            self._unmarked.discard(tid)
            if reservation.wanted_more:
                # Recorded unmet demand still owes a deadline miss at
                # the next period roll; refresh realises it even while
                # the thread stays blocked (as the full scan did).
                self._wanted_stray.add(tid)

    def refresh(self, now: int) -> None:
        self._service_queues(now, mark_wanted=False, include_blocked=True)

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        reservation = self._reservations.get(thread.tid)
        if reservation is None:
            return
        reservation.used_in_period_us += consumed_us
        reservation.total_allocated_us += consumed_us
        # _advance is a no-op until the window must roll (its guard,
        # inlined: elapsed periods > 0 iff now - start >= period).
        if now - reservation.period_start >= reservation.period_us:
            self._advance(thread.tid, reservation, now)
        if reservation.used_in_period_us >= (
            reservation.period_us
            * reservation.proportion_ppt
            // PROPORTION_SCALE
        ):
            # The budget ran out: leave the ready order and wait for a
            # pick to mark unmet demand / schedule the replenishment
            # (pick time is when the scan-based code did both).
            self._rm_heap.discard(thread.tid)
            if thread.state.is_runnable:
                self._reexamine(thread)

    # ------------------------------------------------------------------
    # placement (multiprocessor)
    # ------------------------------------------------------------------
    def placement_weight(self, thread: SimThread) -> float:
        """Balance CPUs by reserved proportion, not by thread count."""
        reservation = self._reservations.get(thread.tid)
        if reservation is None or reservation.proportion_ppt <= 0:
            # Best-effort and zero-proportion threads weigh a token
            # amount so they still spread over otherwise equal CPUs.
            return 1.0
        return float(reservation.proportion_ppt)

    def placement_weights(self, threads: list[SimThread]) -> list[float]:
        """Bulk weights: one tight loop instead of a call per thread."""
        reservations = self._reservations
        weights = []
        append = weights.append
        for thread in threads:
            reservation = reservations.get(thread.tid)
            if reservation is None:
                append(1.0)
            else:
                ppt = reservation.proportion_ppt
                append(float(ppt) if ppt > 0 else 1.0)
        return weights

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        # The _service_queues fast-path test, inlined (per-CPU picks
        # call this up to n_cpus times per round at the same instant).
        if self._unmarked or self._pending or self._wanted_stray:
            self._service_queues(now, mark_wanted=True)
        else:
            due = self._replenish.peek()
            if due is not None and due[0] <= now:
                self._service_queues(now, mark_wanted=True)
        rm_heap = self._rm_heap
        run_queue = self._run_queue
        ready = ThreadState.READY
        running = ThreadState.RUNNING
        # Fast path: the heap minimum is usually dispatchable as-is —
        # peek avoids walking the live set (the dispatchability test is
        # _dispatchable, inlined).
        entry = rm_heap.peek()
        if entry is not None:
            tid = entry[-1]
            thread = run_queue.get(tid)
            if thread is not None:
                state = thread.state
                if cpu is None:
                    dispatchable = state is ready or state is running
                elif state is ready:
                    # eligible_on, inlined for the per-round hot path.
                    affinity = thread.affinity
                    if affinity is not None:
                        dispatchable = affinity == cpu
                    else:
                        assigned = self._placement_map.get(tid)
                        dispatchable = assigned is None or assigned == cpu
                else:
                    dispatchable = False
                if dispatchable:
                    # Fresh window for time_slice / remaining_us, exactly
                    # as the per-pick scan advanced every candidate
                    # (_advance guard inlined: no-op before a roll is due).
                    reservation = self._reservations[tid]
                    if now - reservation.period_start >= reservation.period_us:
                        self._advance(tid, reservation, now)
                    return thread
        # Walk past ineligible entries (typically threads claimed by
        # lower-numbered CPUs this round) without mutating the heap:
        # the sorted live snapshot is exactly the pop order, and every
        # entry stays live either way — an ineligible thread may be
        # eligible for the next CPU's pick, and the chosen one keeps
        # its rate-monotonic position for future picks.
        for entry in rm_heap.live_sorted():
            tid = entry[-1]
            thread = run_queue.get(tid)
            if thread is None:
                continue
            if self._dispatchable(thread, cpu):
                reservation = self._reservations[tid]
                if now - reservation.period_start >= reservation.period_us:
                    self._advance(tid, reservation, now)
                return thread
        best_effort = self._best_effort
        if best_effort:
            candidates = [
                t for t in best_effort.values() if self._dispatchable(t, cpu)
            ]
            if candidates:
                # Round-robin over best-effort threads for basic fairness.
                self._best_effort_cursor += 1
                return candidates[self._best_effort_cursor % len(candidates)]
        return None

    def _dispatchable(self, thread: SimThread, cpu: Optional[int]) -> bool:
        """One predicate for every pick path: may ``thread`` be
        dispatched by this pick?  Mirrors ``dispatch_candidates``:
        uniprocessor picks take any runnable thread; per-CPU picks take
        READY threads placed on (or free to run on) that CPU."""
        state = thread.state
        if cpu is None:
            return state is ThreadState.READY or state is ThreadState.RUNNING
        return state is ThreadState.READY and self.eligible_on(thread, cpu)

    def time_slice(self, thread: SimThread, now: int) -> int:
        reservation = self._reservations.get(thread.tid)
        if reservation is None:
            if self._best_effort_slice_us is not None:
                return self._best_effort_slice_us
            return self.dispatch_interval_us
        slice_us = self.dispatch_interval_us
        if self.enforce_within_slice:
            slice_us = min(slice_us, max(1, reservation.remaining_us))
        return slice_us

    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Time-driven bound on batching dispatches of ``thread``.

        Everything *state*-driven (wake-ups, budget exhaustion via
        :meth:`charge`, controller actuation) bumps the state epoch and
        is handled by the kernel; what remains are the pick-time side
        effects that are pure functions of virtual time, each of which
        first becomes non-trivial at a known instant:

        * a throttled runnable reservation replenishes — the
          replenishment heap's minimum;
        * the picked thread's own period window rolls at the pick —
          its ``period_end()`` (``advance_to`` is a no-op strictly
          before it);
        * a stray recorded unmet demand turns into a deadline miss —
          that reservation's ``period_end()``.

        A best-effort pick is additionally only batchable when it was
        forced: no live rate-monotonic entries and a single
        dispatchable best-effort candidate, since the fairness cursor
        rotates multi-candidate picks.  Deferred examinations
        (``pending``/``unmarked``) are serviced by real picks only, so
        their presence disables batching outright.
        """
        if self._pending_set or self._unmarked:
            return now
        horizon: Optional[int] = None
        entry = self._replenish.peek()
        if entry is not None:
            horizon = entry[0]
        if self._wanted_stray:
            # repro-lint: disable=determinism -- min-fold over period ends; the minimum is independent of visitation order
            for tid in self._wanted_stray:
                stray = self._reservations.get(tid)
                if stray is None:
                    continue
                end = stray.period_end()
                if horizon is None or end < horizon:
                    horizon = end
        reservation = self._reservations.get(thread.tid)
        if reservation is not None:
            end = reservation.period_end()
            if horizon is None or end < horizon:
                horizon = end
            return horizon
        if cpu is not None:
            # Per-CPU best-effort picks depend on the shared cursor and
            # the claims of lower-numbered CPUs; never batch them.
            return now
        if len(self._rm_heap):
            return now
        candidates = 0
        for t in self._best_effort.values():
            if t.state.is_runnable:
                candidates += 1
                if candidates > 1 or t is not thread:
                    return now
        if candidates != 1:
            return now
        return horizon

    def note_batched_picks(self, thread: SimThread, skipped: int, now: int) -> None:
        if thread.tid not in self._reservations:
            # Each skipped best-effort pick saw the same single-entry
            # candidate list and advanced the fairness cursor by one.
            self._best_effort_cursor += skipped

    def next_wakeup(self, now: int) -> Optional[int]:
        earliest: Optional[int] = None
        entry = self._replenish.peek()
        if entry is not None:
            earliest = entry[0]
        # Pending examinations are normally drained by the pick that
        # precedes any idle advance; cover them anyway so a direct call
        # never misses a throttled thread.
        # repro-lint: disable=determinism -- min-fold over period ends; the minimum is independent of visitation order
        for tid in self._pending_set:
            reservation = self._reservations.get(tid)
            thread = self._run_queue.get(tid)
            if (
                reservation is None
                or thread is None
                or not thread.state.is_runnable
                or not reservation.exhausted
            ):
                continue
            end = reservation.period_end()
            if earliest is None or end < earliest:
                earliest = end
        return earliest


__all__ = [
    "DEFAULT_PERIOD_US",
    "PROPORTION_SCALE",
    "Reservation",
    "ReservationScheduler",
]
