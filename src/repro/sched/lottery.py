"""Lottery scheduling.

Waldspurger & Weihl's lottery scheduler ([21] in the paper) is the
best-known proportional-share alternative to reservations.  It is
included as a related-work baseline: it delivers *expected* proportions
matching ticket ratios but, unlike the paper's scheme, provides no
period (jitter bound) and no automatic adaptation — the ticket counts
are still chosen by a human.

The random draw uses an explicit seed so experiments remain
reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sched.base import Scheduler
from repro.sim.errors import SchedulerError
from repro.sim.thread import SimThread


class LotteryScheduler(Scheduler):
    """Probabilistic proportional-share scheduling by ticket count."""

    SCHED_KEY = "lottery"

    #: The RNG stream position and draw counter are pick-relevant:
    #: every draw changes which thread the next lottery selects.
    PICK_RELEVANT_STATE = frozenset({"_rng", "draws"})

    EPOCH_EXEMPT = {
        "pick_next": (
            "each pick consumes one draw by design; batching is gated "
            "by preemption_horizon (single entrant only) and skipped "
            "draws are replayed in note_batched_picks"
        ),
        "note_batched_picks": (
            "replays exactly the single-entrant draws the skipped picks "
            "would have consumed, keeping the RNG stream bit-identical"
        ),
    }

    def __init__(self, seed: int = 0, slice_us: Optional[int] = None) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._slice_us = slice_us
        self.draws = 0

    def set_tickets(self, thread: SimThread, tickets: int) -> None:
        """Assign ``tickets`` to ``thread`` (must be positive)."""
        if tickets <= 0:
            raise SchedulerError(
                f"ticket count must be positive, got {tickets} for "
                f"{thread.name!r}"
            )
        # Ticket counts feed the draw weights, so a change invalidates
        # any in-flight run-to-horizon batch.
        self.state_epoch += 1
        thread.tickets = int(tickets)

    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        runnable = self.dispatch_candidates(cpu)
        if not runnable:
            return None
        # One pass over the tickets; the weights are reused for the
        # winner walk so each thread's count is read exactly once.
        weights = [t.tickets if t.tickets > 1 else 1 for t in runnable]
        winner_ticket = self._rng.randrange(sum(weights))
        self.draws += 1
        upto = 0
        for thread, weight in zip(runnable, weights):
            upto += weight
            if winner_ticket < upto:
                return thread
        return runnable[-1]  # pragma: no cover - defensive, unreachable

    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Batchable only when the lottery has a single entrant.

        With one candidate the winner is forced, but each pick still
        consumes one draw from the seeded RNG; those draws are replayed
        in :meth:`note_batched_picks` so the random stream (and with it
        every later multi-way draw) stays bit-identical to the
        quantum-sliced engine.  Per-CPU picks are never batched.
        """
        if cpu is not None:
            return now
        candidates = self.dispatch_candidates(cpu)
        if len(candidates) == 1 and candidates[0] is thread:
            return None
        return now

    def note_batched_picks(self, thread: SimThread, skipped: int, now: int) -> None:
        # Replay the skipped single-entrant draws: same weight list the
        # pick would have built, so the RNG advances identically.
        tickets = thread.tickets
        weight = tickets if tickets > 1 else 1
        rng = self._rng
        for _ in range(skipped):
            rng.randrange(weight)
        self.draws += skipped

    def time_slice(self, thread: SimThread, now: int) -> int:
        if self._slice_us is not None:
            return self._slice_us
        return self.dispatch_interval_us


__all__ = ["LotteryScheduler"]
