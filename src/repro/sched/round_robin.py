"""Round-robin scheduler.

The simplest baseline: every runnable thread gets one dispatch interval
in turn.  Used by unit tests that need a neutral dispatcher and by the
starvation-comparison benchmarks.

Thread membership and the runnable candidate list come from the shared
run-queue layer in :mod:`repro.sched.base` (O(1) add/remove, candidates
built from ready hints instead of scanning every registered thread);
the cursor arithmetic below is untouched so dispatch order is
bit-identical to the scan-based implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import Scheduler
from repro.sim.thread import SimThread


class RoundRobinScheduler(Scheduler):
    """Cycle through runnable threads, one time slice each."""

    SCHED_KEY = "rr"

    #: The cursor is pick-relevant: it selects among the candidates.
    PICK_RELEVANT_STATE = frozenset({"_cursor"})

    EPOCH_EXEMPT = {
        "pick_next": (
            "the cursor advances on every pick by design; batching is "
            "gated by preemption_horizon (single forced candidate only) "
            "and skipped advances are replayed in note_batched_picks"
        ),
        "note_batched_picks": (
            "replays exactly the cursor advances the skipped forced "
            "picks would have made"
        ),
    }

    def __init__(self, slice_us: Optional[int] = None) -> None:
        super().__init__()
        self._slice_us = slice_us
        self._cursor = 0

    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        runnable = self.dispatch_candidates(cpu)
        if not runnable:
            return None
        cursor = self._cursor + 1
        self._cursor = cursor
        return runnable[cursor % len(runnable)]

    def preemption_horizon(
        self, now: int, thread: SimThread, cpu: Optional[int] = None
    ) -> Optional[int]:
        """Batchable only when the pick is forced (a single candidate).

        With two or more runnable threads the cursor rotates the CPU
        between them every dispatch, so no two consecutive picks agree;
        with exactly one the outcome is forced for as long as the
        membership (guarded by the state epoch) stands still.  Per-CPU
        picks are never batched: candidate sets shrink as earlier CPUs
        claim threads within a round.
        """
        if cpu is not None:
            return now
        candidates = self.dispatch_candidates(cpu)
        if len(candidates) == 1 and candidates[0] is thread:
            return None
        return now

    def note_batched_picks(self, thread: SimThread, skipped: int, now: int) -> None:
        # Each skipped pick would have advanced the cursor by one (the
        # candidate list had exactly one entry, so the pick was forced).
        self._cursor += skipped

    def time_slice(self, thread: SimThread, now: int) -> int:
        if self._slice_us is not None:
            return self._slice_us
        return self.dispatch_interval_us


__all__ = ["RoundRobinScheduler"]
