"""Ablation — PID gain sensitivity on the pulse workload."""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="ablation")
def test_pid_gain_tradeoff(benchmark):
    result = run_experiment(benchmark, "ablation_pid")
    show(result)

    low = result.metric("response_time_s:low")
    default = result.metric("response_time_s:default")
    high = result.metric("response_time_s:high")

    # Higher gains respond faster.
    assert high < default < low

    # The default tuning lands in the paper's regime (~1/3 s) and stays
    # well damped.
    assert 0.05 <= default <= 0.6
    assert result.metric("overshoot:default") < 0.3

    # Aggressive gains trade overshoot for speed.
    assert result.metric("overshoot:high") >= result.metric("overshoot:default")

    # An integral-only controller still converges (the integral term is
    # what holds the allocation), just more slowly than the default.
    assert result.metric("response_time_s:integral_only") > default
