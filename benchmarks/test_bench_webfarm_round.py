"""Micro-benchmarks of the SMP dispatch-round path.

``webfarm`` is the slowest macro scenario because every simulated
millisecond of a 4-CPU farm re-runs the full round machinery: a
placement assignment over the runnable set, one pick per CPU against
the rate-monotonic heap, and up to four dispatch slices sharing one
window.  These benchmarks isolate that path — a placement-heavy round
loop with no controller, and the pure placement assignment — so a
future change that silently reintroduces an O(n) scan (or a per-thread
lambda) into rounds shows up as a step in this group rather than as an
unexplained drift in the macro number.
"""

import pytest

from repro.sched.placement import LeastLoadedPlacement
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Sleep
from repro.sim.thread import SimThread


def _server(burst_us, sleep_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(sleep_us)

    return body


def _build_farm_kernel(n_cpus=4, n_threads=16, engine="horizon"):
    """A controller-free stand-in for the webfarm's round pattern:
    reservation threads that compute and sleep, so rounds constantly
    re-place and re-pick (epoch churn defeats round replay, exactly as
    in the macro scenario)."""
    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler, n_cpus=n_cpus, engine=engine)
    for index in range(n_threads):
        thread = kernel.spawn(
            f"srv{index}", _server(1_500 + 100 * (index % 4), 2_000)
        )
        scheduler.set_reservation(thread, 150, 10_000 + 5_000 * (index % 3))
    return kernel


@pytest.mark.benchmark(group="smp-round")
def test_dispatch_round_throughput(benchmark):
    """Wall cost of 200 ms of pure SMP round machinery (4 CPUs)."""

    def run():
        kernel = _build_farm_kernel()
        kernel.run_for(200_000)
        return kernel

    kernel = benchmark(run)
    # The scenario must actually exercise rounds on every CPU.
    assert kernel.dispatch_count > 400
    assert all(c.dispatches > 0 for c in kernel.cpu_states)
    assert (
        kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
        == kernel.capacity_us()
    )


@pytest.mark.benchmark(group="smp-round")
def test_dispatch_round_throughput_oracle(benchmark):
    """Same round pattern under the quantum-sliced oracle engine, so
    the horizon engine's round-path overhead stays directly comparable
    in one report."""

    def run():
        kernel = _build_farm_kernel(engine="quantum")
        kernel.run_for(200_000)
        return kernel

    kernel = benchmark(run)
    assert kernel.dispatch_count > 400


@pytest.mark.benchmark(group="smp-round")
def test_placement_assignment_16_threads(benchmark):
    """Pure placement cost: one least-loaded assignment of 16 weighted
    threads onto 4 CPUs (runs once per dispatch round in the macro
    scenario, so regressions here multiply by ~2000/sim-second)."""
    threads = [SimThread(f"t{i}") for i in range(16)]
    threads[3].pin_to(1)
    threads[11].pin_to(3)
    weights = {t.tid: float(50 + 100 * (i % 5)) for i, t in enumerate(threads)}
    policy = LeastLoadedPlacement()

    def assign():
        return policy.assign(threads, 4, lambda t: weights[t.tid])

    mapping = benchmark(assign)
    assert set(mapping) == {t.tid for t in threads}
    assert mapping[threads[3].tid] == 1
    assert mapping[threads[11].tid] == 3
    assert set(mapping.values()) == {0, 1, 2, 3}
