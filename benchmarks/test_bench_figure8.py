"""Figure 8 — dispatch overhead vs. dispatcher frequency.

Paper: available CPU (normalised to a 10 ms time slice) falls off as
the dispatcher frequency rises, with a knee around 4000 Hz where the
overhead is about 2.7 %.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="figure8")
def test_figure8_dispatch_overhead_curve(benchmark):
    result = run_experiment(benchmark, "figure8")
    show(result)

    # Knee in the right decade, overhead at the knee close to the paper's.
    assert 2_000 <= result.metric("knee_frequency_hz") <= 6_000
    assert result.metric("overhead_at_knee") == pytest.approx(0.027, abs=0.01)

    # The curve is (weakly) monotonically decreasing and normalised to 1
    # at the 100 Hz baseline.
    frequencies, normalised = result.series["available_cpu_normalised_vs_hz"]
    assert normalised[0] == pytest.approx(1.0, abs=0.01)
    assert all(b <= a + 0.005 for a, b in zip(normalised, normalised[1:]))
    # Meaningful degradation by 10 kHz (the paper's right-hand edge).
    assert normalised[-1] < 0.95


@pytest.mark.benchmark(group="figure8")
def test_figure8_constant_cost_model_knee_shifts_down(benchmark):
    """With a purely constant per-dispatch cost the curve is gentler and
    the knee detector lands at or below the calibrated model's knee."""
    result = run_experiment(
        benchmark,
        "figure8",
        dispatch_cost_us=6.75,
        dispatch_cost_quadratic_us=0.0,
        sim_seconds=1.0,
    )
    assert result.metric("knee_frequency_hz") <= 4_000
