"""Extension — priority inversion (Mars Pathfinder scenario).

Section 2 motivation / Section 4.4 claim: under the real-rate scheme
"starvation, and thus priority inversion, cannot occur", whereas plain
fixed priorities allow an effectively unbounded inversion.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="inversion")
def test_inversion_comparison(benchmark):
    result = run_experiment(benchmark, "inversion")
    show(result)

    deadline = result.metric("deadline_s")

    # Plain fixed priorities: the inversion is unbounded — the high task
    # stops completing iterations and its in-flight latency grows to the
    # length of the run.
    assert result.metric("fixed_priority_worst_latency_s") > 20 * deadline
    assert result.metric("fixed_priority_iterations") <= 2

    # Priority inheritance (the Pathfinder fix) bounds the latency.
    assert result.metric("priority_inheritance_worst_latency_s") <= 2 * deadline
    assert result.metric("priority_inheritance_miss_rate") < 0.05

    # The feedback-driven allocator bounds it too, with no mutex-aware
    # mechanism at all, because the mutex holder is never starved.
    assert result.metric("real_rate_worst_latency_s") <= 2 * deadline
    assert result.metric("real_rate_miss_rate") < 0.05
    assert result.metric("real_rate_iterations") >= 0.9 * result.metric(
        "priority_inheritance_iterations"
    )
