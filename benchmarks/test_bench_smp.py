"""SMP scaling — web-farm throughput versus CPU count.

Extension beyond the paper (the prototype is single-CPU): the same
feedback-driven proportion allocator, budgeting against
``n_cpus * PROPORTION_SCALE``, should turn added CPUs into added served
throughput until the farm's demand fits, and must never grant more than
the kernel's total capacity.
"""

import pytest

from benchmarks.conftest import run_experiment, show

CPU_COUNTS = (1, 2, 4)


@pytest.mark.benchmark(group="smp")
def test_smp_scaling_throughput_and_capacity(benchmark):
    result = run_experiment(benchmark, "smp_scaling", n_cpus=CPU_COUNTS)
    show(result)

    offered = result.metric("offered_rps")
    served = {n: result.metric(f"served_rps_{n}cpu") for n in CPU_COUNTS}

    # The farm needs ~1.8 CPUs: one CPU saturates well below the
    # offered load...
    assert served[1] < 0.65 * offered

    # ...and added CPUs buy real throughput until demand fits.
    assert served[2] > 1.3 * served[1]
    assert served[4] > served[2]
    assert served[4] > 0.85 * offered

    # The controller never grants more than the kernel's capacity (in
    # fact it stays within the scaled overload threshold).
    for n in CPU_COUNTS:
        peak = result.metric(f"peak_granted_ppt_{n}cpu")
        assert peak <= result.metric(f"capacity_ppt_{n}cpu")


@pytest.mark.benchmark(group="smp")
def test_smp_placement_spreads_load(benchmark):
    result = run_experiment(
        benchmark, "smp_scaling", n_cpus=(4,), duration_s=2.0
    )
    show(result)

    # Least-loaded placement should leave no CPU idle while the farm
    # needs ~1.8 CPUs: every CPU does some work, and the busiest CPU is
    # not the only one loaded.
    busy = [result.metric(f"busy_fraction_4cpu_cpu{i}") for i in range(4)]
    assert all(fraction > 0.05 for fraction in busy)
    assert sum(busy) > 1.2
