"""Benchmark / figure-reproduction harness (run with ``--benchmark-only``)."""
