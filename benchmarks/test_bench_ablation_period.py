"""Ablation — period adaptation and enforcement granularity."""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="ablation")
def test_period_adaptation_and_enforcement(benchmark):
    result = run_experiment(benchmark, "ablation_period")
    show(result)

    # With a small proportion the heuristic grows the period above the
    # 30 ms default to reduce quantisation error.
    assert result.metric("adapted_period_us") > result.metric("default_period_us")
    assert result.metric("low_rate_consumer_ppt") < 100

    # Dispatch-granularity enforcement lets threads overrun their
    # reservation; exact (Section 4.3) enforcement does not.
    assert result.metric("overrun_dispatch_granularity") > -0.02
    assert (
        result.metric("overrun_exact_enforcement")
        < result.metric("overrun_dispatch_granularity") + 0.01
    )
