"""Figure 2 (behavioural) — the controller's four thread classes.

Not a measured figure in the paper, but the taxonomy's behavioural
claims are load-bearing: real-time threads keep their reservation
untouched, aperiodic real-time threads get the 30 ms default period,
real-rate threads converge to their measured need, and miscellaneous
threads soak up the slack without starving anyone.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="taxonomy")
def test_taxonomy_behaviour(benchmark):
    result = run_experiment(benchmark, "taxonomy")
    show(result)

    # Real-time: exactly the requested reservation.
    assert result.metric("real_time_allocation_ppt") == 250
    assert result.metric("real_time_period_us") == 20_000
    assert result.metric("class_is_real_time:pulse.producer") == 1.0

    # Aperiodic real-time: requested proportion, default 30 ms period.
    assert result.metric("aperiodic_allocation_ppt") == 150
    assert result.metric("aperiodic_period_us") == 30_000

    # Real-rate: the consumer converged near its need (producer's byte
    # rate at 25% of the CPU needs roughly a quarter of the CPU, plus
    # the dispatch-quantisation overrun).
    assert 150 <= result.metric("real_rate_allocation_ppt") <= 500

    # Miscellaneous: soaks up remaining capacity but is bounded by the
    # overload threshold and cannot starve the others.
    assert result.metric("misc_cpu_share") > 0.1
    assert result.metric("real_time_cpu_share") == pytest.approx(0.25, abs=0.1)

    # Everybody together stays within the machine.
    total_share = (
        result.metric("real_time_cpu_share")
        + result.metric("real_rate_cpu_share")
        + result.metric("aperiodic_cpu_share")
        + result.metric("misc_cpu_share")
    )
    assert total_share <= 1.0
