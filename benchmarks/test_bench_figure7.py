"""Figure 7 — controller response under competing load.

Paper: with a CPU hog competing, the controller squishes the hog and
the consumer (never the producer, which holds a reservation); the
consumer still tracks the producer; the hog's and consumer's
allocations move in opposition.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="figure7")
def test_figure7_response_under_load(benchmark):
    result = run_experiment(benchmark, "figure7")
    show(result)

    # The producer's reservation is never squished.
    assert result.metric("producer_allocation_min_ppt") == result.metric(
        "producer_allocation_max_ppt"
    )

    # Total allocation respects the overload threshold.
    assert result.metric("max_total_allocation_ppt") <= result.metric(
        "overload_threshold_ppt"
    ) + 10

    # The consumer still tracks the producer despite the load.
    assert result.metric("tracking_error_fraction") < 0.15

    # The hog and the consumer trade allocation (strong anti-correlation),
    # which is the oscillation the paper describes.
    assert result.metric("consumer_hog_allocation_correlation") < -0.5

    # The hog still gets a meaningful share (no starvation) but less
    # than the consumer needs at its peak.
    assert result.metric("hog_cpu_fraction") > 0.05
    assert result.metric("consumer_cpu_fraction") > result.metric("hog_cpu_fraction")


@pytest.mark.benchmark(group="figure7")
def test_figure7_response_time_similar_to_idle_case(benchmark):
    result = run_experiment(benchmark, "figure7")
    assert 0.05 <= result.metric("response_time_s") <= 0.8
