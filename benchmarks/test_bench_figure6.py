"""Figure 6 — controller responsiveness on an otherwise idle system.

Paper: the consumer's allocation follows the producer's square-wave
rate; the controller responds to a doubling of the production rate in
roughly a third of a second; fill-level excursions grow with pulse
width and recover to the half-full set point.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="figure6")
def test_figure6_pulse_response(benchmark):
    result = run_experiment(benchmark, "figure6")
    show(result)

    # Response time in the same regime as the paper's ~1/3 s.
    assert 0.05 <= result.metric("response_time_s") <= 0.6

    # The consumer's progress tracks the producer's within a few percent.
    assert result.metric("tracking_error_fraction") < 0.12

    # The queue returns to (and hovers around) the half-full set point.
    assert result.metric("fill_mean_abs_deviation") < 0.15

    # Wider pulses push the fill level further from the set point
    # ("the effect on fill level from pulses with smaller width is
    # smaller").
    narrow = result.metric("fill_peak_deviation_pulse0")
    widest = result.metric("fill_peak_deviation_pulse2")
    assert widest >= narrow

    # On an idle system nothing is squished and nothing raises a
    # quality exception.
    assert result.metric("quality_exceptions") == 0


@pytest.mark.benchmark(group="figure6")
def test_figure6_allocation_tracks_square_wave(benchmark):
    result = run_experiment(benchmark, "figure6")
    times, alloc = result.series["consumer_allocation_ppt"]

    def mean_between(t0, t1):
        values = [v for t, v in zip(times, alloc) if t0 <= t < t1]
        return sum(values) / len(values)

    # During the widest rising pulse (9.3 s – 12.3 s with the default
    # schedule) the allocation is roughly double the low-rate baseline.
    baseline = mean_between(7.5, 9.0)
    pulsed = mean_between(10.0, 12.0)
    assert pulsed > 1.5 * baseline
