"""Micro-benchmarks of the substrate and the controller.

These are conventional timing benchmarks (many rounds) that track the
cost of the two hot paths: simulating one second of a loaded system,
and one controller update over a large thread population — the
quantity Figure 5 is about, here measured directly on the Python
implementation.
"""

import pytest

from repro.core.allocator import ProportionAllocator
from repro.core.config import ControllerConfig
from repro.core.taxonomy import ThreadSpec
from repro.ipc.registry import SymbioticRegistry
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute
from repro.sim.thread import SchedulingPolicy
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulsePipeline, PulseSchedule


def _spin(env):
    while True:
        yield Compute(1_000)


@pytest.mark.benchmark(group="micro")
def test_simulate_one_second_pulse_pipeline(benchmark):
    """Wall-clock cost of simulating 1 s of the Figure 6 pipeline."""

    def run():
        system = build_real_rate_system()
        PulsePipeline.attach(
            system, schedule=PulseSchedule([], default_rate=0.01)
        )
        system.run_for(1_000_000)
        return system.kernel.dispatch_count

    dispatches = benchmark(run)
    assert dispatches > 200


@pytest.mark.benchmark(group="micro")
def test_controller_update_cost_40_threads(benchmark):
    """Cost of one allocator update over 40 controlled threads."""
    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler, charge_dispatch_overhead=False)
    registry = SymbioticRegistry()
    allocator = ProportionAllocator(scheduler, registry, ControllerConfig())
    for i in range(40):
        thread = kernel.spawn(f"t{i}", _spin)
        allocator.register(thread, ThreadSpec())
    clock = {"now": 0}

    def update():
        clock["now"] += 10_000
        return allocator.update(clock["now"])

    decisions = benchmark(update)
    assert len(decisions) == 40


@pytest.mark.benchmark(group="micro")
def test_dispatch_throughput(benchmark):
    """Raw dispatch rate of the kernel with ten runnable threads."""

    def run():
        kernel = Kernel(ReservationScheduler(), charge_dispatch_overhead=False)
        for i in range(10):
            kernel.spawn(f"hog{i}", _spin, policy=SchedulingPolicy.BEST_EFFORT)
        kernel.run_for(500_000)
        return kernel.dispatch_count

    dispatches = benchmark(run)
    assert dispatches >= 490
