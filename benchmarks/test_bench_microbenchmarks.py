"""Micro-benchmarks of the substrate and the controller.

These are conventional timing benchmarks (many rounds) that track the
cost of the two hot paths: simulating one second of a loaded system,
and one controller update over a large thread population — the
quantity Figure 5 is about, here measured directly on the Python
implementation.
"""

import pytest

from repro.core.allocator import ProportionAllocator
from repro.core.config import ControllerConfig
from repro.core.taxonomy import ThreadSpec
from repro.ipc.registry import SymbioticRegistry
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute
from repro.sim.thread import SchedulingPolicy
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulsePipeline, PulseSchedule


def _spin(env):
    while True:
        yield Compute(1_000)


@pytest.mark.benchmark(group="micro")
def test_simulate_one_second_pulse_pipeline(benchmark):
    """Wall-clock cost of simulating 1 s of the Figure 6 pipeline."""

    def run():
        system = build_real_rate_system()
        PulsePipeline.attach(
            system, schedule=PulseSchedule([], default_rate=0.01)
        )
        system.run_for(1_000_000)
        return system.kernel.dispatch_count

    dispatches = benchmark(run)
    assert dispatches > 200


@pytest.mark.benchmark(group="micro")
def test_controller_update_cost_40_threads(benchmark):
    """Cost of one allocator update over 40 controlled threads."""
    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler, charge_dispatch_overhead=False)
    registry = SymbioticRegistry()
    allocator = ProportionAllocator(scheduler, registry, ControllerConfig())
    for i in range(40):
        thread = kernel.spawn(f"t{i}", _spin)
        allocator.register(thread, ThreadSpec())
    clock = {"now": 0}

    def update():
        clock["now"] += 10_000
        return allocator.update(clock["now"])

    decisions = benchmark(update)
    assert len(decisions) == 40


@pytest.mark.benchmark(group="micro")
def test_dispatch_throughput(benchmark):
    """Raw dispatch rate of the kernel with ten runnable threads."""

    def run():
        kernel = Kernel(ReservationScheduler(), charge_dispatch_overhead=False)
        for i in range(10):
            kernel.spawn(f"hog{i}", _spin, policy=SchedulingPolicy.BEST_EFFORT)
        kernel.run_for(500_000)
        return kernel.dispatch_count

    dispatches = benchmark(run)
    assert dispatches >= 490


# ----------------------------------------------------------------------
# scheduler hot-path scaling guards
#
# The reservation scheduler's dispatch operations are incremental
# (heap-backed); these benchmarks time the three hot entry points at
# 8/64/256 registered threads.  A regression back to per-pick scans
# shows up as superlinear growth across the size groups.
# ----------------------------------------------------------------------
def _loaded_scheduler(n_threads: int) -> Kernel:
    """A kernel with ``n_threads`` over-committed reservation spinners."""
    kernel = Kernel(
        ReservationScheduler(), charge_dispatch_overhead=False, syscall_cost_us=0
    )
    scheduler = kernel.scheduler
    for i in range(n_threads):
        thread = kernel.spawn(f"t{i}", _spin)
        scheduler.set_reservation(thread, 25, 10_000 + (i % 8) * 5_000)
    # Run briefly so budgets are partially consumed and the throttled /
    # ready split is realistic for the measured operations.
    kernel.run_for(20_000)
    return kernel


@pytest.mark.parametrize("n_threads", [8, 64, 256])
@pytest.mark.benchmark(group="micro-pick")
def test_pick_next_cost(benchmark, n_threads):
    """pick_next must not scan all registered threads."""
    kernel = _loaded_scheduler(n_threads)
    scheduler = kernel.scheduler
    clock = {"now": kernel.now}

    def pick():
        clock["now"] += 1_000
        return scheduler.pick_next(clock["now"])

    benchmark(pick)


@pytest.mark.parametrize("n_threads", [8, 64, 256])
@pytest.mark.benchmark(group="micro-charge")
def test_charge_cost(benchmark, n_threads):
    """charge touches only the charged thread's reservation."""
    kernel = _loaded_scheduler(n_threads)
    scheduler = kernel.scheduler
    thread = kernel.threads[0]
    clock = {"now": kernel.now}

    def charge():
        clock["now"] += 100
        scheduler.charge(thread, 10, clock["now"])

    benchmark(charge)


@pytest.mark.parametrize("n_threads", [8, 64, 256])
@pytest.mark.benchmark(group="micro-wakeup")
def test_next_wakeup_cost(benchmark, n_threads):
    """next_wakeup answers from the replenishment heap, not a scan."""
    kernel = _loaded_scheduler(n_threads)
    scheduler = kernel.scheduler
    now = kernel.now

    def wakeup():
        return scheduler.next_wakeup(now)

    benchmark(wakeup)
