"""Figure 5 — controller overhead vs. number of controlled processes.

Paper: linear with slope .00066 and intercept .00057 (R² = .999);
2.7 % of the CPU at 40 controlled processes.
"""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="figure5")
def test_figure5_controller_overhead(benchmark):
    result = run_experiment(benchmark, "figure5")
    show(result)

    # Linearity of the modelled overhead (the paper's headline claim).
    assert result.metric("r_squared") > 0.99
    assert result.metric("slope_overhead_per_process") == pytest.approx(
        0.00066, rel=0.05
    )
    assert result.metric("intercept_overhead") == pytest.approx(0.00057, rel=0.15)
    assert result.metric("overhead_at_40_processes") == pytest.approx(0.027, rel=0.1)

    # The actual Python implementation is also linear in the number of
    # controlled threads (different constant, same shape).
    assert result.metric("measured_wall_r_squared") > 0.8
    assert result.metric("measured_wall_us_slope_per_process") > 0.0


@pytest.mark.benchmark(group="figure5")
def test_figure5_overhead_grows_monotonically(benchmark):
    result = run_experiment(
        benchmark, "figure5", process_counts=(0, 10, 20, 30, 40), sim_seconds=1.0
    )
    _, overheads = result.series["modeled_overhead_vs_processes"]
    assert overheads == sorted(overheads)
    assert overheads[0] < 0.001
