"""Ablation — overload squishing: fair share vs. weighted fair share."""

import pytest

from benchmarks.conftest import run_experiment, show


@pytest.mark.benchmark(group="ablation")
def test_squish_policies(benchmark):
    result = run_experiment(benchmark, "ablation_squish")
    show(result)

    # Plain fair share: equal shares regardless of importance ("this
    # policy results in equal allocation of the CPU to all competing
    # jobs over time").
    assert result.metric("fair_top_to_base_ratio") == pytest.approx(1.0, abs=0.1)

    # Weighted fair share: shares follow the importance ratio…
    importance_ratio = result.metric("importance_ratio")
    assert result.metric("weighted_top_to_base_ratio") == pytest.approx(
        importance_ratio, rel=0.35
    )

    # …but importance is not priority: the least important hog still
    # makes progress (no starvation).
    assert result.metric("weighted_share_i1") > 0.02
