"""Shared helpers for the benchmark / figure-reproduction harness.

Every paper figure has one benchmark module.  Each benchmark runs the
corresponding experiment driver exactly once under ``pytest-benchmark``
(``benchmark.pedantic(..., rounds=1)``) — the interesting output is the
reproduced figure data and the shape assertions, not a timing
distribution — and prints a paper-vs-measured table so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
evaluation section in one command.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(result) -> None:
    """Print an experiment result's summary beneath the benchmark output."""
    print()
    print(result.summary())
