"""Shared helpers for the benchmark / figure-reproduction harness.

Every paper figure has one benchmark module.  Each benchmark resolves
its driver through the experiment registry (no hardcoded ``run_*``
imports) and runs it exactly once under ``pytest-benchmark``
(``benchmark.pedantic(..., rounds=1)``) — the interesting output is the
reproduced figure data and the shape assertions, not a timing
distribution — and prints a paper-vs-measured table so that
``pytest benchmarks/ --benchmark-only`` regenerates every figure of the
evaluation section in one command.
"""

from __future__ import annotations

import repro.experiments  # noqa: F401 — importing populates the registry
from repro.experiments.registry import REGISTRY


def run_experiment(benchmark, name, **overrides):
    """Run the registered experiment ``name`` once under the benchmark
    fixture, with ``overrides`` validated against its parameter schema."""
    spec = REGISTRY.get(name)
    return benchmark.pedantic(
        spec.run, args=(overrides,), rounds=1, iterations=1
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def show(result) -> None:
    """Print an experiment result's summary beneath the benchmark output."""
    print()
    print(result.summary())
