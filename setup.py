"""Setup shim.

All project metadata lives in ``pyproject.toml``; this file exists so
the package can be installed editable (``pip install -e .``) on
environments whose setuptools predates PEP 660 editable-install support
(it falls back to the classic ``setup.py develop`` path).
"""

from setuptools import setup

setup()
