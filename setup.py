"""Packaging entry point.

The version is single-sourced from ``src/repro/_version.py``; it is
parsed textually (not imported) so ``setup.py`` works before the
package's dependencies-of-the-day are importable and regardless of
``PYTHONPATH``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_VERSION_FILE = Path(__file__).parent / "src" / "repro" / "_version.py"


def read_version() -> str:
    match = re.search(
        r'^__version__\s*=\s*"([^"]+)"', _VERSION_FILE.read_text(), re.MULTILINE
    )
    if match is None:
        raise RuntimeError(f"no __version__ found in {_VERSION_FILE}")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description=(
        "Reproduction of 'A Feedback-driven Proportion Allocator for "
        "Real-Rate Scheduling' (OSDI 1999) on a deterministic simulator"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
)
