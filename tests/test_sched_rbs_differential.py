"""Differential test: optimized vs reference reservation scheduler.

The incremental :class:`~repro.sched.rbs.ReservationScheduler` (heap
run queues, pick-time reclassification, running aggregates) must make
exactly the decisions of the historical O(n) scan-and-sort
implementation.  :class:`ReferenceReservationScheduler` below *is* that
implementation, kept verbatim as a test fixture; hypothesis drives both
through identical randomized workloads — reservation changes, blocks
and wake-ups, dispatch rounds with charges, on 1 and 4 CPUs — and every
pick, every charge outcome and the final deadline-miss counts must
match.

The one intentional representation difference: the optimized scheduler
rolls period windows *lazily* (a window advances when its thread is
next examined, not at every pick), so interim ``period_start`` /
``used_in_period_us`` values of unexamined threads may trail the
reference.  Window arithmetic composes (rolling later reaches the same
state), so the comparison realises all windows before checking final
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.base import Scheduler
from repro.sched.rbs import (
    DEFAULT_PERIOD_US,
    Reservation,
    ReservationScheduler,
)
from repro.sim.errors import SchedulerError
from repro.sim.thread import SchedulingPolicy, SimThread, ThreadState


class ReferenceReservationScheduler(Scheduler):
    """The pre-optimization scan-based dispatcher, kept as an oracle.

    This is the seed implementation verbatim (modulo the base class's
    list membership becoming :meth:`Scheduler.threads`): every pick
    rebuilds the eligible list, advances every candidate's period
    window and re-sorts; the aggregate queries scan every thread.
    """

    SCHED_KEY = "rbs_ref"

    def __init__(self) -> None:
        super().__init__()
        self._best_effort_cursor = 0

    def reservation(self, thread: SimThread) -> Optional[Reservation]:
        return thread.sched_data.get(self.SCHED_KEY)

    def set_reservation(self, thread, proportion_ppt, period_us=DEFAULT_PERIOD_US,
                        *, now=0):
        if not self.has_thread(thread):
            raise SchedulerError(
                f"thread {thread.name!r} is not registered with this scheduler"
            )
        current = self.reservation(thread)
        if current is None:
            reservation = Reservation(
                proportion_ppt=int(proportion_ppt),
                period_us=int(period_us),
                period_start=now,
            )
            thread.sched_data[self.SCHED_KEY] = reservation
            return reservation
        Reservation(proportion_ppt=int(proportion_ppt), period_us=int(period_us))
        current.proportion_ppt = int(proportion_ppt)
        if int(period_us) != current.period_us:
            current.period_us = int(period_us)
            current.period_start = now
            current.used_in_period_us = 0
        return current

    def clear_reservation(self, thread: SimThread) -> None:
        thread.sched_data.pop(self.SCHED_KEY, None)

    def total_reserved_ppt(self) -> int:
        total = 0
        for thread in self.threads():
            reservation = self.reservation(thread)
            if reservation is not None:
                total += reservation.proportion_ppt
        return total

    def deadline_misses(self) -> int:
        total = 0
        for thread in self.threads():
            reservation = self.reservation(thread)
            if reservation is not None:
                total += reservation.deadline_misses
        return total

    def refresh(self, now: int) -> None:
        for thread in self.threads():
            reservation = self.reservation(thread)
            if reservation is not None:
                reservation.advance_to(now)

    def charge(self, thread: SimThread, consumed_us: int, now: int) -> None:
        reservation = self.reservation(thread)
        if reservation is None:
            return
        reservation.used_in_period_us += consumed_us
        reservation.total_allocated_us += consumed_us
        reservation.advance_to(now)

    def placement_weight(self, thread: SimThread) -> float:
        reservation = self.reservation(thread)
        if reservation is None or reservation.proportion_ppt <= 0:
            return 1.0
        return float(reservation.proportion_ppt)

    def _eligible_reservation_threads(self, now, cpu=None):
        eligible = []
        for thread in self.dispatch_candidates(cpu):
            reservation = self.reservation(thread)
            if reservation is None:
                continue
            reservation.advance_to(now)
            if reservation.exhausted:
                reservation.wanted_more = True
                continue
            eligible.append(thread)
        return eligible

    def _runnable_best_effort(self, cpu=None):
        return [
            t for t in self.dispatch_candidates(cpu) if self.reservation(t) is None
        ]

    def pick_next(self, now: int, cpu: Optional[int] = None) -> Optional[SimThread]:
        eligible = self._eligible_reservation_threads(now, cpu)
        if eligible:
            eligible.sort(
                key=lambda t: (
                    self.reservation(t).period_us,
                    -self.reservation(t).proportion_ppt,
                    t.tid,
                )
            )
            return eligible[0]
        best_effort = self._runnable_best_effort(cpu)
        if not best_effort:
            return None
        self._best_effort_cursor += 1
        return best_effort[self._best_effort_cursor % len(best_effort)]

    def next_wakeup(self, now: int) -> Optional[int]:
        earliest: Optional[int] = None
        for thread in self.threads():
            if not thread.state.is_runnable:
                continue
            reservation = self.reservation(thread)
            if reservation is None or not reservation.exhausted:
                continue
            end = reservation.period_end()
            if earliest is None or end < earliest:
                earliest = end
        return earliest


@dataclass
class _FakeKernel:
    """Just enough kernel for a detached scheduler: time and CPU count."""

    now: int = 0
    n_cpus: int = 1
    dispatch_interval_us: int = 1_000
    offline_cpu_count: int = 0

    @property
    def online_cpu_count(self) -> int:
        return self.n_cpus - self.offline_cpu_count

    def online_cpu_indices(self) -> tuple[int, ...]:
        return tuple(range(self.n_cpus))


class DualHarness:
    """Drives the optimized and the reference scheduler in lockstep.

    Each logical thread exists twice (one twin per scheduler, created
    in the same order so relative tid ordering — the sort tiebreak —
    matches).  Every operation is applied to both sides; picks are the
    primary equivalence check.
    """

    def __init__(self, n_threads: int, n_cpus: int) -> None:
        self.n_cpus = n_cpus
        self.now = 0
        self.opt = ReservationScheduler()
        self.ref = ReferenceReservationScheduler()
        self.opt_kernel = _FakeKernel(n_cpus=n_cpus)
        self.ref_kernel = _FakeKernel(n_cpus=n_cpus)
        self.opt.attach(self.opt_kernel)
        self.ref.attach(self.ref_kernel)
        self.opt_threads: list[SimThread] = []
        self.ref_threads: list[SimThread] = []
        for i in range(n_threads):
            # Alternate twin creation so both sides interleave tids the
            # same way relative to each other.
            a = SimThread(f"t{i}", policy=SchedulingPolicy.BEST_EFFORT)
            b = SimThread(f"t{i}", policy=SchedulingPolicy.BEST_EFFORT)
            a.state = ThreadState.READY
            b.state = ThreadState.READY
            self.opt_threads.append(a)
            self.ref_threads.append(b)
            self.opt.add_thread(a)
            self.ref.add_thread(b)
            self.opt.on_ready(a, 0)
            self.ref.on_ready(b, 0)
        self.picks: list[Optional[str]] = []

    def _sync_clocks(self) -> None:
        self.opt_kernel.now = self.now
        self.ref_kernel.now = self.now

    # -- operations ----------------------------------------------------
    def set_reservation(self, index: int, ppt: int, period_us: int) -> None:
        self._sync_clocks()
        self.opt.set_reservation(
            self.opt_threads[index], ppt, period_us, now=self.now
        )
        self.ref.set_reservation(
            self.ref_threads[index], ppt, period_us, now=self.now
        )

    def clear_reservation(self, index: int) -> None:
        self.opt.clear_reservation(self.opt_threads[index])
        self.ref.clear_reservation(self.ref_threads[index])

    def block(self, index: int) -> None:
        a, b = self.opt_threads[index], self.ref_threads[index]
        if a.state is not ThreadState.READY:
            return
        a.state = ThreadState.BLOCKED
        b.state = ThreadState.BLOCKED
        self.opt.on_block(a, self.now)
        self.ref.on_block(b, self.now)

    def wake(self, index: int) -> None:
        a, b = self.opt_threads[index], self.ref_threads[index]
        if a.state is not ThreadState.BLOCKED:
            return
        a.state = ThreadState.READY
        b.state = ThreadState.READY
        self.opt.on_ready(a, self.now)
        self.ref.on_ready(b, self.now)

    def refresh(self, skip_us: int) -> None:
        """The kernel's idle path: jump the clock, refresh, compare.

        This is where blocked threads' period windows roll in the
        reference implementation, so deadline misses recorded for
        threads that blocked while throttled must surface identically.
        """
        self.now += skip_us
        self._sync_clocks()
        self.opt.refresh(self.now)
        self.ref.refresh(self.now)
        self._assert_aggregates()

    def _assert_aggregates(self) -> None:
        assert self.opt.total_reserved_ppt() == self.ref.total_reserved_ppt()
        assert self.opt.deadline_misses() == self.ref.deadline_misses(), (
            f"deadline misses diverged at t={self.now}: "
            f"optimized={self.opt.deadline_misses()} "
            f"reference={self.ref.deadline_misses()}"
        )
        assert self.opt.next_wakeup(self.now) == self.ref.next_wakeup(self.now)

    def dispatch_round(self, consumed_us: int) -> None:
        """One pick/charge round, mirroring the kernel's structure."""
        self._sync_clocks()
        if self.n_cpus == 1:
            a = self.opt.pick_next(self.now)
            b = self.ref.pick_next(self.now)
            assert (a.name if a else None) == (b.name if b else None), (
                f"pick diverged at t={self.now}: "
                f"optimized={a and a.name} reference={b and b.name}"
            )
            self.picks.append(a.name if a else None)
            pairs = [(a, b)] if a is not None else []
        else:
            self.opt.place_threads(self.now)
            self.ref.place_threads(self.now)
            pairs = []
            for cpu in range(self.n_cpus):
                a = self.opt.pick_next_cpu(cpu, self.now)
                b = self.ref.pick_next_cpu(cpu, self.now)
                assert (a.name if a else None) == (b.name if b else None), (
                    f"SMP pick diverged at t={self.now} cpu={cpu}: "
                    f"optimized={a and a.name} reference={b and b.name}"
                )
                self.picks.append(a.name if a else None)
                if a is not None:
                    # Claim, as Kernel._dispatch_round does, so the next
                    # CPU cannot pick the same thread this round.
                    a.state = ThreadState.RUNNING
                    b.state = ThreadState.RUNNING
                    pairs.append((a, b))
        # The picked threads run and are charged; slices end preempted.
        end = self.now + max(1, consumed_us)
        for a, b in pairs:
            self.opt.charge(a, consumed_us, end)
            self.ref.charge(b, consumed_us, end)
            a.state = ThreadState.READY
            b.state = ThreadState.READY
            self.opt.on_preempt(a, end)
            self.ref.on_preempt(b, end)
        self.now = end
        self._sync_clocks()
        # Aggregates kept incrementally must match the scans, and the
        # idle-wakeup answer must be identical (it steers kernel time).
        self._assert_aggregates()

    # -- final comparison ----------------------------------------------
    def check_final(self) -> None:
        # Realise every lazily-rolled window, then the full reservation
        # accounting must agree.  (advance_to composes: rolling a
        # window late reaches the same state as rolling it eagerly.)
        horizon = self.now + 1_000_000
        for a, b in zip(self.opt_threads, self.ref_threads):
            res_a = self.opt.reservation(a)
            res_b = self.ref.reservation(b)
            assert (res_a is None) == (res_b is None), a.name
            if res_a is None:
                continue
            res_a.advance_to(horizon)
            res_b.advance_to(horizon)
            # periods_elapsed is deliberately absent: it is a pure
            # diagnostic counter, and a period *change* resets a lazily
            # rolled window without realising rolls the eager scan had
            # already counted.  Everything behavioural — budget usage,
            # charges, misses, the post-reset window — must agree.
            assert (
                res_a.proportion_ppt,
                res_a.period_us,
                res_a.deadline_misses,
                res_a.used_in_period_us,
                res_a.total_allocated_us,
            ) == (
                res_b.proportion_ppt,
                res_b.period_us,
                res_b.deadline_misses,
                res_b.used_in_period_us,
                res_b.total_allocated_us,
            ), f"reservation state diverged for {a.name}"


# -- strategies --------------------------------------------------------
def _operations(n_threads: int):
    index = st.integers(min_value=0, max_value=n_threads - 1)
    return st.lists(
        st.one_of(
            st.tuples(
                st.just("reserve"),
                index,
                st.integers(min_value=0, max_value=400),       # ppt
                st.sampled_from([2_000, 5_000, 10_000, 30_000]),  # period
            ),
            st.tuples(st.just("clear"), index),
            st.tuples(st.just("block"), index),
            st.tuples(st.just("wake"), index),
            st.tuples(
                st.just("round"),
                st.integers(min_value=0, max_value=3_000),     # consumed
            ),
            st.tuples(
                st.just("refresh"),
                st.integers(min_value=0, max_value=40_000),    # idle skip
            ),
        ),
        min_size=10,
        max_size=60,
    )


workload = st.integers(min_value=2, max_value=8).flatmap(
    lambda n: st.tuples(st.just(n), _operations(n))
)


@pytest.mark.parametrize("n_cpus", [1, 4])
@given(case=workload)
@settings(max_examples=200, deadline=None)
def test_optimized_matches_reference(n_cpus, case):
    """Pick sequences, charges and deadline misses are identical."""
    n_threads, operations = case
    harness = DualHarness(n_threads, n_cpus)
    rounds = 0
    for op in operations:
        kind = op[0]
        if kind == "reserve":
            harness.set_reservation(op[1], op[2], op[3])
        elif kind == "clear":
            harness.clear_reservation(op[1])
        elif kind == "block":
            harness.block(op[1])
        elif kind == "wake":
            harness.wake(op[1])
        elif kind == "refresh":
            harness.refresh(op[1])
        else:
            harness.dispatch_round(op[1])
            rounds += 1
    # Always end with a few settled rounds so replenishments and
    # throttling get exercised even for draw-heavy op sequences.
    for _ in range(5):
        harness.dispatch_round(1_000)
        rounds += 1
    assert rounds >= 5
    harness.check_final()


@pytest.mark.parametrize("wake_before_end", [False, True])
def test_miss_recorded_for_thread_that_blocks_while_throttled(wake_before_end):
    """A throttled thread's recorded demand survives a block.

    The thread exhausts its budget (a pick marks ``wanted_more``), then
    blocks; when the kernel's idle path refreshes past the period end,
    the deadline miss must be counted exactly as the scan-based
    implementation counted it — whether or not the thread ever wakes.
    """
    harness = DualHarness(n_threads=2, n_cpus=1)
    harness.set_reservation(0, 100, 10_000)  # 1 ms budget per 10 ms
    # Consume the whole budget in one round, then pick again so the
    # schedulers observe the exhausted thread (marking wanted_more).
    harness.dispatch_round(1_000)
    harness.dispatch_round(500)
    harness.block(0)
    if wake_before_end:
        harness.wake(0)
    # Idle past the period boundary: the reference refresh rolls every
    # window; the optimized one must realise the same miss.
    harness.refresh(20_000)
    assert harness.opt.deadline_misses() == harness.ref.deadline_misses() == 1
    harness.check_final()


def test_reference_is_really_the_old_algorithm():
    """Sanity: the oracle picks by the scan-and-sort rules."""
    scheduler = ReferenceReservationScheduler()
    scheduler.attach(_FakeKernel())
    short = SimThread("short")
    long = SimThread("long")
    for thread in (short, long):
        thread.state = ThreadState.READY
        scheduler.add_thread(thread)
    scheduler.set_reservation(short, 100, 5_000)
    scheduler.set_reservation(long, 100, 50_000)
    assert scheduler.pick_next(0) is short
