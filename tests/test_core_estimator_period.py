"""Unit tests for the proportion estimator (Figure 4) and period heuristic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ControllerConfig
from repro.core.estimator import ProportionEstimator
from repro.core.period import PeriodEstimator
from repro.monitor.usage import UsageSample


def usage(used_us: int, interval_us: int, allocated_ppt: int) -> UsageSample:
    return UsageSample(
        used_us=used_us,
        interval_us=interval_us,
        allocated_us=interval_us * allocated_ppt // 1000,
    )


def full_usage(interval_us: int, allocated_ppt: int) -> UsageSample:
    allocated = interval_us * allocated_ppt // 1000
    return UsageSample(used_us=allocated, interval_us=interval_us, allocated_us=allocated)


class TestProportionEstimator:
    def test_positive_pressure_raises_allocation(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = config.min_proportion_ppt
        for _ in range(50):
            result = estimator.estimate(0.4, full_usage(10_000, current), current, dt)
            current = result.desired_ppt
        assert current > 200

    def test_negative_pressure_lowers_allocation(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = config.min_proportion_ppt
        for _ in range(100):
            current = estimator.estimate(
                0.4, full_usage(10_000, current), current, dt
            ).desired_ppt
        high = current
        for _ in range(100):
            current = estimator.estimate(
                -0.4, full_usage(10_000, current), current, dt
            ).desired_ppt
        assert current < high

    def test_output_respects_bounds(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = config.min_proportion_ppt
        for _ in range(500):
            current = estimator.estimate(
                0.5, full_usage(10_000, current), current, dt
            ).desired_ppt
        assert current == config.max_proportion_ppt
        for _ in range(2_000):
            current = estimator.estimate(
                -0.5, full_usage(10_000, current), current, dt
            ).desired_ppt
        assert current == config.min_proportion_ppt

    def test_zero_pressure_holds_allocation(self):
        """The integral term preserves the level once the error is zero."""
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = config.min_proportion_ppt
        for _ in range(60):
            current = estimator.estimate(
                0.3, full_usage(10_000, current), current, dt
            ).desired_ppt
        level = current
        for _ in range(20):
            current = estimator.estimate(
                0.0, full_usage(10_000, current), current, dt
            ).desired_ppt
        assert current == pytest.approx(level, abs=level * 0.15 + 5)

    def test_reclaim_fires_for_unused_allocation(self):
        """Positive pressure but unused allocation: the Figure 4 "too
        generous" branch must override the PID and reduce the
        allocation (the disk-bottlenecked case)."""
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = 500
        reclaimed = False
        for _ in range(30):
            result = estimator.estimate(
                0.4, usage(0, 10_000, current), current, dt
            )
            reclaimed = reclaimed or result.reclaimed
            current = result.desired_ppt
        assert reclaimed
        assert current < 500
        assert estimator.reclaim_count > 0

    def test_reclaim_reduces_by_constant_steps(self):
        config = ControllerConfig(reclaim_decrement_ppt=50, unused_threshold=0.5)
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        # Warm the usage EMA down so the reclaim rule is active.
        current = 600
        for _ in range(10):
            result = estimator.estimate(0.4, usage(0, 10_000, current), current, dt)
            current = result.desired_ppt
        # Once reclaiming, each step drops the allocation by <= C.
        previous = current
        result = estimator.estimate(0.4, usage(0, 10_000, previous), previous, dt)
        assert result.reclaimed
        assert 0 < previous - result.desired_ppt <= 50

    def test_no_reclaim_when_allocation_fully_used(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = 400
        for _ in range(50):
            result = estimator.estimate(
                0.1, full_usage(10_000, current), current, dt
            )
            assert not result.reclaimed
            current = result.desired_ppt

    def test_no_reclaim_at_minimum_proportion(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        dt = config.controller_period_s
        current = config.min_proportion_ppt
        for _ in range(20):
            result = estimator.estimate(0.0, usage(0, 10_000, current), current, dt)
            assert not result.reclaimed

    def test_reset(self):
        config = ControllerConfig()
        estimator = ProportionEstimator(config)
        estimator.estimate(0.5, full_usage(10_000, 100), 100, 0.01)
        estimator.reset()
        assert estimator.last_desired_ppt == config.min_proportion_ppt
        assert estimator.reclaim_count == 0


class TestPeriodEstimator:
    def test_small_allocation_grows_period(self):
        config = ControllerConfig(adapt_period=True)
        estimator = PeriodEstimator(config, dispatch_interval_us=1_000)
        start = estimator.period_us
        decision = estimator.update(proportion_ppt=10, fill_level=0.5)
        assert decision.grew_for_quantization
        assert decision.period_us > start

    def test_period_capped_at_maximum(self):
        config = ControllerConfig(adapt_period=True, period_max_us=60_000)
        estimator = PeriodEstimator(config, dispatch_interval_us=1_000)
        for _ in range(100):
            estimator.update(proportion_ppt=5, fill_level=0.5)
        assert estimator.period_us <= 60_000

    def test_large_allocation_keeps_period(self):
        config = ControllerConfig(adapt_period=True)
        estimator = PeriodEstimator(config, dispatch_interval_us=1_000)
        start = estimator.period_us
        decision = estimator.update(proportion_ppt=500, fill_level=0.5)
        assert not decision.grew_for_quantization
        assert decision.period_us == start

    def test_oscillation_shrinks_period(self):
        config = ControllerConfig(adapt_period=True, oscillation_threshold=0.1)
        estimator = PeriodEstimator(config, dispatch_interval_us=1_000)
        fills = [0.1, 0.9] * 10
        shrank = False
        for fill in fills:
            decision = estimator.update(proportion_ppt=500, fill_level=fill)
            shrank = shrank or decision.shrank_for_jitter
        assert shrank
        assert estimator.period_us < config.default_period_us

    def test_period_floored_at_minimum(self):
        config = ControllerConfig(
            adapt_period=True, oscillation_threshold=0.05, period_min_us=8_000
        )
        estimator = PeriodEstimator(config, dispatch_interval_us=1_000)
        for i in range(200):
            estimator.update(proportion_ppt=500, fill_level=(i % 2) * 1.0)
        assert estimator.period_us >= 8_000

    def test_initial_period_from_spec(self):
        config = ControllerConfig(adapt_period=True)
        estimator = PeriodEstimator(
            config, dispatch_interval_us=1_000, initial_period_us=42_000
        )
        assert estimator.period_us == 42_000


class TestEstimateTickEquivalence:
    """The fused controller fast path (estimate_tick) must be
    bit-identical to estimate() — same outputs, same internal state —
    over arbitrary histories, since the production controller runs only
    the fused copy while the unfused one remains the readable spec."""

    @settings(max_examples=60, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(
                st.floats(
                    min_value=-2.0, max_value=2.0,
                    allow_nan=False, allow_infinity=False,
                ),
                st.integers(min_value=0, max_value=20_000),   # used_us
                st.integers(min_value=0, max_value=20_000),   # interval_us
                st.integers(min_value=0, max_value=1_000),    # current_ppt
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_fused_path_is_bit_identical(self, steps):
        config = ControllerConfig()
        dt = config.controller_period_s
        unfused = ProportionEstimator(config)
        fused = ProportionEstimator(config)
        for pressure, used, interval, current_ppt in steps:
            allocated = interval * current_ppt // 1000
            reference = unfused.estimate(
                pressure,
                UsageSample(
                    used_us=used, interval_us=interval, allocated_us=allocated
                ),
                current_ppt,
                dt,
            )
            desired, cumulative, reclaimed = fused.estimate_tick(
                pressure, used, interval, allocated, current_ppt, dt
            )
            assert desired == reference.desired_ppt
            assert cumulative == reference.cumulative_pressure
            assert reclaimed == reference.reclaimed
            # Internal state must track exactly, or later steps drift.
            assert fused.pid.integral_value == unfused.pid.integral_value
            assert fused.pid.last_output == unfused.pid.last_output
            assert fused.pid.last_error == unfused.pid.last_error
            assert fused.pid.steps == unfused.pid.steps
            assert fused._usage_ratio_ema == unfused._usage_ratio_ema
            assert fused._used_fraction_ema == unfused._used_fraction_ema
            assert fused.reclaim_count == unfused.reclaim_count
            assert fused.last_desired_ppt == unfused.last_desired_ppt

    def test_fused_path_rejects_bad_dt(self):
        estimator = ProportionEstimator(ControllerConfig())
        with pytest.raises(ValueError, match="dt must be positive"):
            estimator.estimate_tick(0.1, 0, 0, 0, 0, 0.0)
