"""The five churn scenarios: registration, engine equivalence, shapes.

The acceptance bar for the open-system scenarios is that each produces
**bit-identical dispatch-log fingerprints** on ``engine="quantum"`` and
``engine="horizon"`` — every scenario stamps its fingerprint into
``metadata["dispatch_fingerprint"]`` exactly so this suite can diff the
two engines end-to-end through the registry.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import BENCH_REGISTRY, run_scenario
from repro.cli import main
from repro.experiments.churn import DEFAULT_TRACE
from repro.experiments.registry import REGISTRY

CHURN_SCENARIOS = (
    "churn_webfarm",
    "tidal_pipeline",
    "thundering_herd",
    "flash_crowd_rt",
    "trace_replay",
    "response_curve",
    "slo_flash_crowd",
)


class TestRegistration:
    def test_all_churn_scenarios_registered(self):
        for name in CHURN_SCENARIOS:
            spec = REGISTRY.get(name)
            assert "churn" in spec.tags
            engine = spec.param("engine")
            assert engine.choices == ("horizon", "quantum")
            assert engine.default == "horizon"

    def test_quick_overrides_shrink_duration(self):
        for name in CHURN_SCENARIOS:
            spec = REGISTRY.get(name)
            quick = spec.resolve(quick=True)
            full = spec.resolve()
            assert quick["duration_s"] < full["duration_s"], name


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", CHURN_SCENARIOS)
    def test_bit_identical_fingerprints(self, name):
        """Quick-mode runs under both engines agree on everything."""
        results = {
            engine: REGISTRY.run(name, {"engine": engine}, quick=True)
            for engine in ("quantum", "horizon")
        }
        quantum, horizon = results["quantum"], results["horizon"]
        assert (
            horizon.metadata["dispatch_fingerprint"]
            == quantum.metadata["dispatch_fingerprint"]
        ), f"{name}: dispatch logs diverged between engines"
        # The scalar metrics are all derived from the same deterministic
        # run, so they must agree exactly too.
        assert horizon.metrics == quantum.metrics
        assert horizon.metadata["engine"] == "horizon"
        assert quantum.metadata["engine"] == "quantum"


class TestScenarioShapes:
    def test_churn_webfarm_serves_while_churning(self):
        result = REGISTRY.run("churn_webfarm", quick=True)
        assert result.metrics["jobs_spawned"] > 0
        assert result.metrics["jobs_completed"] > 0
        assert result.metrics["served_rps"] > 0
        assert "live_jobs" in result.series

    def test_tidal_pipeline_throughput(self):
        result = REGISTRY.run("tidal_pipeline", quick=True)
        assert result.metrics["jobs_completed"] > 0
        assert result.metrics["throughput_jps"] > 0

    def test_thundering_herd_spawns_in_waves(self):
        result = REGISTRY.run("thundering_herd", quick=True)
        expected = result.metrics["herd_size"] * result.metrics["n_waves"]
        assert result.metrics["jobs_spawned"] == expected
        assert result.metrics["peak_live_jobs"] > 0

    def test_flash_crowd_rejects_and_recovers(self):
        result = REGISTRY.run("flash_crowd_rt", quick=True)
        assert result.metrics["jobs_rejected"] > 0, (
            "the flash must overwhelm admission"
        )
        assert result.metrics["jobs_completed"] > 0
        assert 0 < result.metrics["admit_ratio"] < 1
        assert result.metrics["peak_reserved_ppt"] > 0

    def test_trace_replay_builtin_and_file(self, tmp_path):
        builtin = REGISTRY.run("trace_replay", quick=True)
        assert builtin.metadata["trace_file"] == "<built-in>"
        assert builtin.metrics["jobs_spawned"] > 0
        path = tmp_path / "tiny.trace"
        path.write_text("0 web\n10000 batch\n20000 web\n")
        custom = REGISTRY.run(
            "trace_replay", {"trace_file": str(path)}, quick=True
        )
        assert custom.metrics["trace_arrivals"] == 3
        assert custom.metrics["jobs_spawned"] == 3

    def test_churn_results_carry_sojourn_percentiles(self):
        result = REGISTRY.run("flash_crowd_rt", quick=True)
        records = result.metadata["job_records"]
        assert records, "the flash crowd must leave completion records"
        outcomes = {record["outcome"] for record in records}
        assert outcomes <= {"completed", "killed", "rejected"}
        percentiles = result.metadata["sojourn_percentiles"]
        assert "all" in percentiles and "rt" in percentiles
        overall = percentiles["all"]
        assert overall["p50_us"] <= overall["p95_us"] <= overall["p99_us"]
        assert overall["p99_us"] <= overall["p999_us"] <= overall["max_us"]
        # Headline percentiles are mirrored into the metrics table.
        assert result.metrics["sojourn_p99_ms"] == overall["p99_us"] / 1_000.0

    def test_response_curve_latency_rises_with_load(self):
        result = REGISTRY.run("response_curve", quick=True)
        points = result.metadata["response_curve"]
        assert len(points) == 3
        rates = [point["offered_per_s"] for point in points]
        assert rates == sorted(rates)
        p99s = [point["p99_us"] for point in points]
        assert all(value is not None for value in p99s)
        assert p99s[-1] > p99s[0], "tail latency must rise toward saturation"
        assert "knee_offered_per_s" in result.metrics
        assert "p99_sojourn_ms" in result.series

    def test_slo_flash_crowd_compares_both_controllers(self):
        result = REGISTRY.run("slo_flash_crowd", quick=True)
        controllers = result.metadata["controllers"]
        assert set(controllers) == {"pid", "slo"}
        for name in ("pid", "slo"):
            assert result.metrics[f"{name}_completed"] > 0
            assert controllers[name]["dispatch_fingerprint"]
        # The SLO loop must actually have actuated under the flash.
        assert controllers["slo"]["slo_adjustments"] > 0
        assert controllers["slo"]["final_job_ppt"] != controllers["pid"][
            "final_job_ppt"
        ]

    def test_slo_pid_pass_is_flash_crowd_rt_verbatim(self):
        """Same seed, same params: the slo experiment's pid pass must
        replay flash_crowd_rt's exact dispatch log."""
        slo = REGISTRY.run("slo_flash_crowd", quick=True)
        flash = REGISTRY.run("flash_crowd_rt", quick=True)
        assert (
            slo.metadata["controllers"]["pid"]["dispatch_fingerprint"]
            == flash.metadata["dispatch_fingerprint"]
        )

    def test_default_trace_is_parseable_and_sorted(self):
        offsets = [
            int(line.split()[0])
            for line in DEFAULT_TRACE.splitlines()
            if line and not line.startswith("#")
        ]
        assert offsets == sorted(offsets)
        assert len(offsets) == 60


class TestCli:
    def test_run_churn_scenario_via_cli(self, capsys):
        code = main(
            ["run", "flash_crowd_rt", "--quick", "--param", "engine=quantum"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs_rejected" in out

    def test_cli_json_artifact_round_trips(self, tmp_path, capsys):
        path = tmp_path / "churn.json"
        code = main(
            ["run", "thundering_herd", "--quick", "--json", str(path)]
        )
        assert code == 0
        artifact = json.loads(path.read_text())
        assert artifact["experiment_id"] == "thundering_herd"
        assert artifact["metadata"]["params"]["engine"] == "horizon"
        assert "dispatch_fingerprint" in artifact["metadata"]


class TestChurnBench:
    def test_churn1k_registered(self):
        scenario = BENCH_REGISTRY["churn1k"]
        assert "churn" in scenario.tags

    def test_churn1k_quick_run_counts_lifetimes(self):
        result = run_scenario(BENCH_REGISTRY["churn1k"], quick=True, repeats=1)
        assert result.threads_completed > 50
        assert result.n_threads >= result.threads_completed
        assert result.engine == "horizon"
        assert result.to_dict()["threads_completed"] == result.threads_completed

    def test_full_churn1k_exceeds_1000_lifetimes_by_construction(self):
        """The full-size scenario must stay above the 1000-lifetime bar.

        Running the full 2-second simulation here would be slow, so the
        bar is checked by arithmetic on the registered configuration:
        the deterministic stream alone contributes sim_us/4000 arrivals
        and the Poisson stream ~450/s, with per-job demand well under
        capacity (measured headroom in BENCH_kernel.json's
        threads_completed).
        """
        scenario = BENCH_REGISTRY["churn1k"]
        deterministic_jobs = scenario.sim_us // 4_000
        poisson_jobs = 450 * scenario.sim_us // 1_000_000
        assert deterministic_jobs + poisson_jobs > 1_200
