"""Determinism regression tests.

Two runs of the same scenario with identical configuration must be
byte-identical: same event traces, same full dispatch order (time, CPU,
thread, outcome, consumed CPU) and same final accounting.  This is the
property that makes every figure reproduction exactly repeatable, and
it must survive the multi-CPU dispatch rounds — placement, per-CPU
picks and intra-window local clocks are all deterministic.

The scenario is a cheap proxy for the figure6 pulse experiment (same
pipeline workload, shorter schedule) plus, for the SMP runs, a small
web farm so more than one CPU actually has work.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import seconds
from repro.system import build_real_rate_system
from repro.workloads.pulse import PulseParameters, PulsePipeline, PulseSchedule
from repro.workloads.webfarm import WebFarm

#: Virtual duration of the proxy scenario (keeps the test fast).
DURATION_S = 0.8


def run_proxy_scenario(n_cpus: int):
    """One deterministic run; returns (fingerprint, dispatch log, accounting)."""
    system = build_real_rate_system(n_cpus=n_cpus, record_dispatches=True)
    params = PulseParameters()
    schedule = PulseSchedule.paper_figure6(params.base_rate_bytes_per_cpu_us)
    pipeline = PulsePipeline.attach(system, schedule=schedule, params=params)
    tracer = system.kernel.tracer
    tracer.add_sampler(
        system.kernel.events, 50_000, "fill",
        lambda now: pipeline.queue.fill_level(),
    )
    if n_cpus > 1:
        WebFarm.attach(system, n_servers=3, requests_per_second=100.0,
                       service_cpu_us=1_200)
    system.run_for(seconds(DURATION_S))

    kernel = system.kernel
    accounting = {
        t.name: (
            t.accounting.total_us,
            t.accounting.dispatches,
            t.accounting.preemptions,
            t.accounting.voluntary_switches,
            t.accounting.blocks,
            t.accounting.sleeps,
            t.state.value,
        )
        for t in kernel.threads
    }
    totals = (
        kernel.now,
        kernel.idle_us,
        kernel.stolen_dispatch_us,
        kernel.stolen_controller_us,
        kernel.dispatch_count,
        tuple((c.idle_us, c.stolen_dispatch_us, c.dispatches)
              for c in kernel.cpu_states),
    )
    return tracer.fingerprint(), list(kernel.dispatch_log), accounting, totals


@pytest.mark.parametrize("n_cpus", [1, 4])
def test_identical_runs_are_byte_identical(n_cpus):
    first = run_proxy_scenario(n_cpus)
    second = run_proxy_scenario(n_cpus)

    # Full event traces (every sampled series, every controller
    # decision trace) are byte-identical.
    assert first[0] == second[0]

    # The complete dispatch order matches: same times, same CPUs, same
    # threads, same outcomes, same consumed CPU, in the same order.
    assert first[1] == second[1]

    # Final per-thread accounting and kernel totals match exactly.
    assert first[2] == second[2]
    assert first[3] == second[3]


def test_dispatch_log_is_recorded_and_ordered():
    fingerprint, log, accounting, totals = run_proxy_scenario(4)
    assert log, "dispatch log should not be empty"
    times = [entry[0] for entry in log]
    # Rounds execute CPUs at a shared window start, so times within the
    # log are non-decreasing per CPU (global order may interleave).
    per_cpu: dict[int, list[int]] = {}
    for t, cpu, _, _, _ in log:
        per_cpu.setdefault(cpu, []).append(t)
    for cpu_times in per_cpu.values():
        assert cpu_times == sorted(cpu_times)
    # Every CPU dispatched something in the SMP scenario.
    assert set(per_cpu) == {0, 1, 2, 3}
