"""Integration tests for the experiment drivers (reduced-size runs).

The full-size reproductions live in ``benchmarks/``; these tests run
smaller configurations so the unit-test suite stays fast while still
exercising every driver end to end.
"""

import pytest

from repro.experiments.ablation_pid import run_ablation_pid
from repro.experiments.ablation_squish import run_ablation_squish
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import run_figure7
from repro.experiments.figure8 import run_figure8
from repro.experiments.inversion import run_inversion_comparison
from repro.experiments.taxonomy import run_taxonomy
from repro.workloads.pulse import PulseParameters, PulseSchedule


def small_schedule():
    params = PulseParameters()
    return PulseSchedule.paper_figure6(
        params.base_rate_bytes_per_cpu_us,
        rising_widths_s=(1.5,),
        falling_widths_s=(1.5,),
        gap_s=1.5,
        start_s=2.0,
        tail_s=1.0,
    )


class TestFigure5Driver:
    def test_linear_overhead(self):
        result = run_figure5(process_counts=(0, 10, 20, 30), sim_seconds=1.0)
        assert result.metric("slope_overhead_per_process") == pytest.approx(
            0.00066, rel=0.05
        )
        assert result.metric("r_squared") > 0.99
        assert result.metric("overhead_at_40_processes") == pytest.approx(
            0.027, rel=0.1
        )
        xs, ys = result.series["modeled_overhead_vs_processes"]
        assert len(xs) == 4
        assert ys == sorted(ys)


class TestFigure6Driver:
    def test_metrics_present_and_sane(self):
        result = run_figure6(schedule=small_schedule())
        assert 0.02 <= result.metric("response_time_s") <= 0.8
        assert result.metric("tracking_error_fraction") < 0.2
        assert "producer_rate_bytes_per_s" in result.series
        assert "queue_fill_level" in result.series
        assert "consumer_allocation_ppt" in result.series


class TestFigure7Driver:
    def test_squishing_respects_threshold(self):
        result = run_figure7(schedule=small_schedule())
        assert result.metric("max_total_allocation_ppt") <= result.metric(
            "overload_threshold_ppt"
        ) + 10
        assert result.metric("producer_allocation_min_ppt") == result.metric(
            "producer_allocation_max_ppt"
        )
        assert result.metric("consumer_hog_allocation_correlation") < -0.3


class TestFigure8Driver:
    def test_knee_and_monotonicity(self):
        result = run_figure8(
            frequencies_hz=(100, 500, 1_000, 2_000, 4_000, 8_000, 10_000),
            sim_seconds=0.5,
        )
        assert 1_000 <= result.metric("knee_frequency_hz") <= 8_000
        xs, ys = result.series["available_cpu_normalised_vs_hz"]
        assert ys[0] == pytest.approx(1.0, abs=0.01)
        # Available CPU decreases (weakly) with dispatcher frequency.
        assert all(b <= a + 0.01 for a, b in zip(ys, ys[1:]))


class TestTaxonomyDriver:
    def test_classes_and_allocations(self):
        result = run_taxonomy(sim_seconds=4.0)
        assert result.metric("real_time_allocation_ppt") == 250
        assert result.metric("aperiodic_allocation_ppt") == 150
        assert result.metric("aperiodic_period_us") == 30_000
        assert result.metric("class_is_real_time:pulse.producer") == 1.0
        assert result.metric("class_is_real_time:cpu.hog") == 0.0


class TestInversionDriver:
    def test_real_rate_beats_plain_priorities(self):
        result = run_inversion_comparison(sim_seconds=4.0)
        assert result.metric("fixed_priority_worst_latency_s") > 1.0
        assert result.metric("real_rate_worst_latency_s") < 0.5
        assert result.metric("real_rate_miss_rate") < 0.1


class TestAblationDrivers:
    def test_squish_ablation_importance_ratio(self):
        result = run_ablation_squish(sim_seconds=4.0)
        assert result.metric("fair_top_to_base_ratio") == pytest.approx(1.0, abs=0.15)
        assert result.metric("weighted_top_to_base_ratio") > 2.0

    def test_pid_ablation_orders_response_times(self):
        result = run_ablation_pid(
            settings=(("low", 0.1, 0.3, 0.0), ("high", 0.8, 3.0, 0.01))
        )
        assert (
            result.metric("response_time_s:high")
            < result.metric("response_time_s:low")
        )
