"""Smoke tests for the ``python -m repro`` command line."""

import json

import pytest

from repro._version import __version__
from repro.analysis.results import RESULT_SCHEMA_VERSION, ExperimentResult
from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "figure5", "figure6", "figure7", "figure8", "taxonomy",
            "inversion", "smp_scaling", "ablation_period", "ablation_pid",
            "ablation_squish",
        ):
            assert name in out

    def test_tag_filter(self, capsys):
        assert main(["list", "--tag", "ablation"]) == 0
        out = capsys.readouterr().out
        assert "ablation_pid" in out
        assert "figure5" not in out

    def test_unknown_tag_fails(self, capsys):
        assert main(["list", "--tag", "nonesuch"]) == 1


class TestDescribe:
    def test_describe_shows_schema(self, capsys):
        assert main(["describe", "smp_scaling"]) == 0
        out = capsys.readouterr().out
        assert "n_cpus" in out
        assert "quick" in out
        assert "seed" in out

    def test_describe_unknown_experiment(self, capsys):
        assert main(["describe", "nope"]) == 2
        assert "no experiment named" in capsys.readouterr().err


class TestRun:
    def test_run_quick_with_json_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "figure8.json"
        code = main([
            "run", "figure8", "--quick", "--seed", "1",
            "--param", "sim_seconds=0.2", "--json", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[figure8]" in out
        data = json.loads(out_path.read_text())
        assert data["schema_version"] == RESULT_SCHEMA_VERSION
        assert data["repro_version"] == __version__
        assert data["metadata"]["params"]["seed"] == 1
        assert data["metadata"]["quick"] is True
        # The artifact reconstructs into a full result object.
        result = ExperimentResult.from_dict(data)
        assert result.metric("knee_frequency_hz") > 0

    def test_json_dash_writes_stdout(self, capsys):
        code = main([
            "run", "figure8", "--quick", "--param", "sim_seconds=0.2",
            "--json", "-",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["experiment_id"] == "figure8"

    def test_bad_param_name_is_an_error(self, capsys):
        assert main(["run", "figure8", "--param", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_bad_param_value_is_an_error(self, capsys):
        assert main(["run", "figure8", "--param", "sim_seconds=fast"]) == 2
        assert "not a valid float" in capsys.readouterr().err

    def test_malformed_param_flag_is_an_error(self, capsys):
        assert main(["run", "figure8", "--param", "sim_seconds"]) == 2
        assert "name=value" in capsys.readouterr().err

    def test_cpus_shorthand_requires_n_cpus_param(self, capsys):
        assert main(["run", "figure8", "--cpus", "2"]) == 2
        assert "n_cpus" in capsys.readouterr().err

    def test_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2


class TestSweep:
    def test_sweep_requires_a_grid(self, capsys):
        assert main(["sweep", "figure8"]) == 2
        assert "at least one --param" in capsys.readouterr().err

    def test_small_serial_sweep(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        code = main([
            "sweep", "figure8", "--quick",
            "--param", "sim_seconds=0.1,0.2", "--json", str(out_path),
        ])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["kind"] == "sweep"
        assert data["experiment"] == "figure8"
        assert [p["params"]["sim_seconds"] for p in data["points"]] == [0.1, 0.2]
