"""Per-checker behaviour of ``repro lint`` against the fixture corpus.

Every checker is exercised in both directions: the ``*_bad`` fixtures
must produce the expected findings (the mutation-style proof that the
checker catches real violations), and the matching good fixtures must
stay clean (no false positives on the approved idioms).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.staticcheck.atomicwrite import AtomicWriteChecker
from repro.staticcheck.core import Project
from repro.staticcheck.determinism import DeterminismChecker
from repro.staticcheck.epoch import EpochContractChecker
from repro.staticcheck.experiments import ExperimentRegistryChecker
from repro.staticcheck.floatorder import FloatOrderChecker
from repro.staticcheck.wire import WireFormatChecker, build_snapshot

FIXTURES = Path(__file__).parent / "staticcheck_fixtures"
REPO_ROOT = Path(__file__).parent.parent
SRC_SCHED = REPO_ROOT / "src" / "repro" / "sched"


def fixture_project(*names: str) -> Project:
    return Project([FIXTURES / name for name in names], display_root=REPO_ROOT)


# ----------------------------------------------------------------------
# epoch-contract
# ----------------------------------------------------------------------
def test_epoch_checker_flags_unbumped_mutations():
    findings = EpochContractChecker().check(fixture_project("epoch_bad.py"))
    by_symbol = {f.symbol for f in findings}
    assert "BrokenScheduler.enqueue" in by_symbol
    assert "BrokenScheduler.set_weight" in by_symbol
    assert "BrokenScheduler.drop_weight" in by_symbol
    assert "BrokenScheduler.requeue" in by_symbol


def test_epoch_checker_flags_malformed_registry():
    findings = EpochContractChecker().check(fixture_project("epoch_bad.py"))
    assert any(
        "PICK_RELEVANT_STATE" in f.message and f.symbol == "MalformedScheduler"
        for f in findings
    )


def test_epoch_checker_accepts_all_bump_spellings():
    findings = EpochContractChecker().check(fixture_project("epoch_good.py"))
    assert findings == []


def test_epoch_checker_catches_doctored_rbs(tmp_path):
    """The acceptance criterion: seed a 'mutate the ready heap without
    bumping the epoch' edit into a copy of sched/rbs.py and prove the
    checker reports it (and that the pristine copy stays clean)."""
    sched_dir = tmp_path / "sched"
    sched_dir.mkdir()
    for name in ("base.py", "rbs.py"):
        (sched_dir / name).write_text(
            (SRC_SCHED / name).read_text(encoding="utf-8"), encoding="utf-8"
        )

    clean = EpochContractChecker().check(Project([sched_dir]))
    assert [f for f in clean if f.check == "epoch-contract"] == []

    rbs = sched_dir / "rbs.py"
    text = rbs.read_text(encoding="utf-8")
    anchor = "    def pick_next("
    assert anchor in text
    doctored_method = (
        "    def doctored_requeue(self, tid):\n"
        "        heapq.heappush(self._rm_heap, (0, 0, tid))\n\n"
    )
    rbs.write_text(text.replace(anchor, doctored_method + anchor, 1))

    findings = EpochContractChecker().check(Project([sched_dir]))
    doctored = [f for f in findings if f.symbol.endswith("doctored_requeue")]
    assert len(doctored) == 1
    assert "_rm_heap" in doctored[0].message
    assert "state_epoch" in doctored[0].message


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_determinism_checker_flags_the_four_violation_classes():
    findings = DeterminismChecker().check(fixture_project("determinism_bad.py"))
    messages = "\n".join(f.message for f in findings)
    assert "time.time()" in messages
    assert "random.uniform()" in messages
    assert "random.Random() without a seed" in messages
    assert "iterates a set in hash order" in messages
    assert "id() in a sort key" in messages


def test_determinism_checker_accepts_sorted_wrapping():
    findings = DeterminismChecker().check(fixture_project("determinism_bad.py"))
    # ordered() wraps the set in sorted() and must not be flagged
    assert not any(f.symbol == "NoisyComponent.ordered" for f in findings)


# ----------------------------------------------------------------------
# float-order
# ----------------------------------------------------------------------
def test_float_order_checker_flags_annotated_module():
    findings = FloatOrderChecker().check(fixture_project("floatorder_bad.py"))
    messages = "\n".join(f.message for f in findings)
    assert "sum()" in messages
    assert "math.fsum()" in messages
    assert "reassociated accumulation" in messages
    assert len(findings) == 3


def test_float_order_checker_ignores_unannotated_module():
    findings = FloatOrderChecker().check(fixture_project("floatorder_clean.py"))
    assert findings == []


# ----------------------------------------------------------------------
# wire-format
# ----------------------------------------------------------------------
def test_wire_checker_requires_from_dict(tmp_path):
    checker = WireFormatChecker(tmp_path / "no_snapshot.json")
    findings = checker.check(fixture_project("wire_bad.py"))
    assert any("no matching from_dict" in f.message for f in findings)


def test_wire_checker_requires_version_const(tmp_path):
    checker = WireFormatChecker(tmp_path / "no_snapshot.json")
    findings = checker.check(fixture_project("wire_unversioned.py"))
    assert any("*_SCHEMA_VERSION" in f.message for f in findings)


def test_wire_checker_detects_field_drift_without_version_bump(tmp_path):
    source = (FIXTURES / "wire_bad.py").read_text(encoding="utf-8")
    module = tmp_path / "record.py"
    module.write_text(source)
    snapshot_path = tmp_path / "snapshot.json"
    snapshot_path.write_text(
        json.dumps(build_snapshot(Project([module]))), encoding="utf-8"
    )
    checker = WireFormatChecker(snapshot_path)

    # unchanged: the only finding is the missing from_dict
    findings = checker.check(Project([module]))
    assert not any("fields changed" in f.message for f in findings)

    # grow the payload without bumping the version -> drift finding
    module.write_text(
        source.replace('"value": self.value', '"value": self.value, "extra": 1')
    )
    findings = checker.check(Project([module]))
    drift = [f for f in findings if "fields changed" in f.message]
    assert len(drift) == 1
    assert "added extra" in drift[0].message
    assert "RECORD_SCHEMA_VERSION" in drift[0].message

    # bump the version too -> becomes a "refresh the snapshot" reminder
    module.write_text(
        source.replace('"value": self.value', '"value": self.value, "extra": 1')
        .replace("RECORD_SCHEMA_VERSION = 1", "RECORD_SCHEMA_VERSION = 2")
    )
    findings = checker.check(Project([module]))
    assert not any("fields changed" in f.message for f in findings)
    assert any("drifted from the committed wire snapshot" in f.message
               for f in findings)


def test_shipped_wire_snapshot_matches_tree():
    """The committed wire_snapshot.json must equal what the tree builds
    — otherwise someone changed a to_dict without refreshing it."""
    from repro.staticcheck.cli import PACKAGE_ROOT
    from repro.staticcheck.wire import DEFAULT_SNAPSHOT_PATH, load_snapshot

    project = Project([PACKAGE_ROOT], display_root=REPO_ROOT)
    assert build_snapshot(project) == load_snapshot(DEFAULT_SNAPSHOT_PATH)


# ----------------------------------------------------------------------
# atomic-write
# ----------------------------------------------------------------------
def test_atomic_write_checker_flags_every_raw_write_shape():
    findings = AtomicWriteChecker().check(fixture_project("atomicwrite_bad.py"))
    by_symbol = {f.symbol for f in findings}
    assert by_symbol == {
        "truncating_write",
        "keyword_mode_write",
        "exclusive_write",
        "update_write",
        "fd_write",
        "io_write",
        "pathlib_write",
    }
    messages = "\n".join(f.message for f in findings)
    assert "write_atomic" in messages
    assert "append_durable" in messages


def test_atomic_write_checker_accepts_reads_and_the_helpers():
    findings = AtomicWriteChecker().check(
        fixture_project("atomicwrite_clean.py")
    )
    assert findings == []


def test_atomic_write_checker_exempts_the_helper_module():
    """core/artifacts.py is the single intentional home of raw
    write-mode open(); the checker must not flag its own escape hatch."""
    artifacts = REPO_ROOT / "src" / "repro" / "core" / "artifacts.py"
    findings = AtomicWriteChecker().check(
        Project([artifacts], display_root=REPO_ROOT)
    )
    assert findings == []


def test_atomic_write_shipped_tree_is_clean_or_suppressed():
    """Every raw write left in the tree carries a justified suppression
    (suppressions are applied by run_checks, so raw findings here must
    each be covered by one)."""
    from repro.staticcheck.cli import PACKAGE_ROOT

    project = Project([PACKAGE_ROOT], display_root=REPO_ROOT)
    modules = {m.rel_path: m for m in project.modules}
    for finding in AtomicWriteChecker().check(project):
        module = modules[finding.path]
        suppression = module.suppression_for(finding.check, finding.line)
        assert suppression is not None, finding.render()
        assert suppression.justification, finding.render()


# ----------------------------------------------------------------------
# experiment-registry
# ----------------------------------------------------------------------
def test_experiment_checker_flags_missing_knobs_and_fingerprint():
    findings = ExperimentRegistryChecker().check(
        fixture_project("experiments_bad.py")
    )
    messages = "\n".join(f.message for f in findings)
    assert "'engine' param" in messages
    assert "'seed' param" in messages
    assert "dispatch_fingerprint" in messages
    assert len(findings) == 3


def test_experiment_checker_resolves_shared_params_on_real_tree():
    """Every registered experiment in the shipped tree conforms — the
    shared ENGINE_PARAM alias chain must resolve across modules."""
    from repro.staticcheck.cli import PACKAGE_ROOT

    project = Project([PACKAGE_ROOT], display_root=REPO_ROOT)
    findings = ExperimentRegistryChecker().check(project)
    assert findings == []
