"""Unit tests for the thread taxonomy and the controller configuration."""

import pytest

from repro.core.config import ControllerConfig
from repro.core.errors import ControllerError
from repro.core.taxonomy import ThreadClass, ThreadSpec, classify
from repro.swift.pid import PIDGains


class TestThreadSpec:
    def test_defaults(self):
        spec = ThreadSpec()
        assert not spec.specifies_proportion
        assert not spec.specifies_period
        assert spec.importance == 1.0
        assert not spec.interactive

    def test_invalid_proportion(self):
        with pytest.raises(ControllerError):
            ThreadSpec(proportion_ppt=0)
        with pytest.raises(ControllerError):
            ThreadSpec(proportion_ppt=1_001)

    def test_invalid_period(self):
        with pytest.raises(ControllerError):
            ThreadSpec(period_us=0)

    def test_invalid_importance(self):
        with pytest.raises(ControllerError):
            ThreadSpec(importance=0)


class TestClassification:
    def test_real_time(self):
        spec = ThreadSpec(proportion_ppt=100, period_us=10_000)
        assert classify(spec, has_progress_metric=False) is ThreadClass.REAL_TIME
        # A progress metric does not demote a full reservation.
        assert classify(spec, has_progress_metric=True) is ThreadClass.REAL_TIME

    def test_aperiodic_real_time(self):
        spec = ThreadSpec(proportion_ppt=100)
        assert (
            classify(spec, has_progress_metric=False)
            is ThreadClass.APERIODIC_REAL_TIME
        )

    def test_real_rate(self):
        assert classify(ThreadSpec(), True) is ThreadClass.REAL_RATE
        # Specifying only a period still leaves the proportion to feedback.
        assert classify(ThreadSpec(period_us=10_000), True) is ThreadClass.REAL_RATE

    def test_miscellaneous(self):
        assert classify(ThreadSpec(), False) is ThreadClass.MISCELLANEOUS

    def test_squishability(self):
        assert ThreadClass.REAL_RATE.is_squishable
        assert ThreadClass.MISCELLANEOUS.is_squishable
        assert not ThreadClass.REAL_TIME.is_squishable
        assert not ThreadClass.APERIODIC_REAL_TIME.is_squishable

    def test_reservation_spec_flag(self):
        assert ThreadClass.REAL_TIME.has_reservation_spec
        assert ThreadClass.APERIODIC_REAL_TIME.has_reservation_spec
        assert not ThreadClass.REAL_RATE.has_reservation_spec


class TestControllerConfig:
    def test_defaults_valid(self):
        config = ControllerConfig()
        assert config.controller_period_us == 10_000
        assert config.controller_period_s == pytest.approx(0.01)
        assert 0 < config.min_fraction < config.max_fraction <= 1

    def test_paper_default_period(self):
        assert ControllerConfig().default_period_us == 30_000

    def test_invalid_controller_period(self):
        with pytest.raises(ControllerError):
            ControllerConfig(controller_period_us=0)

    def test_invalid_setpoint(self):
        with pytest.raises(ControllerError):
            ControllerConfig(setpoint_fill=1.5)

    def test_invalid_proportion_bounds(self):
        with pytest.raises(ControllerError):
            ControllerConfig(min_proportion_ppt=0)
        with pytest.raises(ControllerError):
            ControllerConfig(min_proportion_ppt=500, max_proportion_ppt=100)

    def test_invalid_thresholds(self):
        with pytest.raises(ControllerError):
            ControllerConfig(overload_threshold_ppt=0)
        with pytest.raises(ControllerError):
            ControllerConfig(admission_threshold_ppt=2_000)

    def test_invalid_k_scale(self):
        with pytest.raises(ControllerError):
            ControllerConfig(k_scale=0)

    def test_invalid_unused_threshold(self):
        with pytest.raises(ControllerError):
            ControllerConfig(unused_threshold=1.5)

    def test_invalid_period_bounds(self):
        with pytest.raises(ControllerError):
            ControllerConfig(period_min_us=10_000, period_max_us=5_000)

    def test_custom_gains_accepted(self):
        config = ControllerConfig(pid_gains=PIDGains(kp=1.0, ki=2.0, kd=0.1))
        assert config.pid_gains.ki == 2.0
