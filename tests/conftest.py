"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import ControllerConfig
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.registry import SymbioticRegistry
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Exit, Get, Put, Sleep, Yield
from repro.sim.thread import SimThread
from repro.system import build_real_rate_system


@pytest.fixture
def rr_kernel() -> Kernel:
    """A kernel with a round-robin scheduler and no overheads."""
    return Kernel(
        RoundRobinScheduler(),
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
    )


@pytest.fixture
def rbs_kernel() -> Kernel:
    """A kernel with a reservation scheduler and no overheads."""
    return Kernel(
        ReservationScheduler(),
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
    )


@pytest.fixture
def registry() -> SymbioticRegistry:
    return SymbioticRegistry()


@pytest.fixture
def small_system():
    """A fully wired real-rate system with overheads disabled."""
    return build_real_rate_system(
        ControllerConfig(),
        charge_dispatch_overhead=False,
        charge_controller_overhead=False,
    )


def spin_body(burst_us: int = 1_000):
    """A body factory: burn CPU forever in ``burst_us`` chunks."""

    def body(env):
        while True:
            yield Compute(burst_us)

    return body


def finite_body(total_us: int, burst_us: int = 1_000):
    """A body factory: burn ``total_us`` of CPU then exit."""

    def body(env):
        remaining = total_us
        while remaining > 0:
            step = min(burst_us, remaining)
            yield Compute(step)
            remaining -= step

    return body


def producer_body(queue, block_bytes: int, compute_us: int):
    """A body factory: compute then put, forever."""

    def body(env):
        while True:
            yield Compute(compute_us)
            yield Put(queue, block_bytes)

    return body


def consumer_body(queue, block_bytes: int, compute_us: int):
    """A body factory: get then compute, forever."""

    def body(env):
        while True:
            yield Get(queue, block_bytes)
            yield Compute(compute_us)

    return body
