"""Unit tests for exact-rank sojourn percentiles and response curves."""

from __future__ import annotations

import pytest

from repro.analysis.sojourn import (
    SLO_PERCENTILES,
    ResponseCurvePoint,
    SojournStats,
    exact_rank_percentile,
    response_curve_series,
    sojourn_stats,
    sojourn_stats_by_tag,
)


def _record(tag="web", outcome="completed", sojourn=1_000, **extra):
    record = {
        "stream": "s",
        "index": 0,
        "tag": tag,
        "spawn_us": 0,
        "end_us": sojourn,
        "outcome": outcome,
        "sojourn_us": sojourn,
    }
    record.update(extra)
    return record


class TestExactRankPercentile:
    def test_single_sample_is_every_percentile(self):
        for percent in (0, 50, 99, 99.9, 100):
            assert exact_rank_percentile([42], percent) == 42

    def test_nearest_rank_definition(self):
        values = list(range(1, 101))  # 1..100
        assert exact_rank_percentile(values, 50) == 50
        assert exact_rank_percentile(values, 95) == 95
        assert exact_rank_percentile(values, 99) == 99
        assert exact_rank_percentile(values, 99.9) == 100
        assert exact_rank_percentile(values, 100) == 100
        assert exact_rank_percentile(values, 0) == 1

    def test_result_is_always_an_observed_sample(self):
        values = [3, 7, 1000]
        for percent in (10, 50, 90, 99, 99.9):
            assert exact_rank_percentile(values, percent) in values

    def test_empty_and_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            exact_rank_percentile([], 50)
        with pytest.raises(ValueError, match="percent"):
            exact_rank_percentile([1], 101)
        with pytest.raises(ValueError, match="percent"):
            exact_rank_percentile([1], -1)


class TestSojournStats:
    def test_counts_and_percentiles(self):
        records = [_record(sojourn=us) for us in (100, 200, 300, 400)]
        records.append(_record(outcome="killed", sojourn=50))
        records.append(_record(outcome="rejected", sojourn=0))
        stats = sojourn_stats(records, tag="web")
        assert stats.completed == 4
        assert stats.killed == 1
        assert stats.rejected == 1
        assert stats.mean_us == 250.0
        assert stats.min_us == 100 and stats.max_us == 400
        assert stats.p50_us == 200
        # Only *completed* jobs contribute latency samples.
        assert stats.p99_us == 400

    def test_no_completions_yields_none_latencies(self):
        records = [_record(outcome="rejected", sojourn=0)] * 3
        stats = sojourn_stats(records, tag="web")
        assert stats.completed == 0 and stats.rejected == 3
        assert stats.mean_us is None
        assert stats.p50_us is None and stats.p999_us is None
        # The dict form keeps the Nones (rendered as absent downstream).
        assert stats.to_dict()["p99_us"] is None

    def test_round_trips_to_dict(self):
        stats = sojourn_stats([_record(sojourn=5)], tag="t")
        data = stats.to_dict()
        assert data["tag"] == "t"
        assert data["completed"] == 1
        assert data["p999_us"] == 5

    def test_slo_percentiles_are_the_standard_four(self):
        assert SLO_PERCENTILES == (50.0, 95.0, 99.0, 99.9)


class TestSojournStatsByTag:
    def test_aggregate_first_then_sorted_tags(self):
        records = [
            _record(tag="web", sojourn=100),
            _record(tag="batch", sojourn=900),
            _record(tag="web", sojourn=300),
        ]
        stats = sojourn_stats_by_tag(records)
        assert list(stats) == ["all", "batch", "web"]
        assert stats["all"].completed == 3
        assert stats["web"].completed == 2
        assert stats["batch"].p50_us == 900

    def test_empty_records_give_empty_mapping(self):
        assert sojourn_stats_by_tag([]) == {}


class TestResponseCurve:
    def test_point_dict_flattens_stats(self):
        stats = sojourn_stats([_record(sojourn=1_000)], tag="web")
        point = ResponseCurvePoint(offered_per_s=50.0, stats=stats)
        data = point.to_dict()
        assert data["offered_per_s"] == 50.0
        assert data["p99_us"] == 1_000

    def test_series_skips_saturated_points(self):
        good = ResponseCurvePoint(
            50.0, sojourn_stats([_record(sojourn=2_000)], tag="w")
        ).to_dict()
        # Past saturation nothing completes: the point has no p99.
        saturated = ResponseCurvePoint(
            500.0, sojourn_stats([_record(outcome="killed")], tag="w")
        ).to_dict()
        rates, values = response_curve_series([good, saturated])
        assert rates == [50.0]
        assert values == [2.0]  # microseconds rendered as milliseconds

    def test_series_field_selectable(self):
        point = ResponseCurvePoint(
            10.0, sojourn_stats([_record(sojourn=4_000)], tag="w")
        ).to_dict()
        _, p50 = response_curve_series([point], field="p50_us")
        assert p50 == [4.0]
