"""Tests for the perf-benchmark registry and the ``bench`` subcommand."""

import dataclasses
import json

import pytest

from repro.bench import (
    BENCH_REGISTRY,
    BENCH_SCHEMA_VERSION,
    BenchError,
    bench_scenario,
    bench_to_dict,
    format_bench_table,
    run_bench,
    run_scenario,
)
from repro.cli import main

#: A tiny simulated duration so CLI/runner tests stay fast.
TINY_US = 5_000


class TestRegistry:
    def test_expected_scenarios_registered(self):
        for name in ("webserver", "webfarm", "overload64",
                     "overload64_controller", "pipeline"):
            assert name in BENCH_REGISTRY

    def test_quick_durations_are_shorter(self):
        for scenario in BENCH_REGISTRY.values():
            assert 0 < scenario.quick_sim_us < scenario.sim_us

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BenchError, match="already registered"):
            bench_scenario(
                name="overload64", description="dup", sim_us=1, quick_sim_us=1
            )(lambda sim_us: lambda: None)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(BenchError, match="unknown bench scenario"):
            run_bench(["nonesuch"])


class TestRunner:
    def test_run_scenario_measures_and_counts(self):
        scenario = BENCH_REGISTRY["overload64"]
        result = run_scenario(scenario, quick=True, repeats=2)
        assert len(result.wall_s) == 2
        assert result.wall_s_min > 0
        assert result.sim_us == scenario.quick_sim_us
        assert result.sim_us_per_wall_s > 0
        assert result.dispatches > 0
        assert result.n_threads == 64

    def test_repeats_must_be_positive(self):
        with pytest.raises(BenchError, match="repeats"):
            run_scenario(BENCH_REGISTRY["overload64"], repeats=0)

    def test_artifact_schema(self):
        results = [run_scenario(BENCH_REGISTRY["overload64"], quick=True,
                                repeats=1)]
        artifact = bench_to_dict(results, quick=True, repeats=1)
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["kind"] == "bench"
        assert artifact["quick"] is True
        (entry,) = artifact["scenarios"]
        assert entry["name"] == "overload64"
        assert entry["wall_s_min"] > 0
        assert entry["sim_us_per_wall_s"] > 0
        # The kernel engine is recorded so quantum-vs-horizon numbers
        # stay distinguishable in the perf trajectory.
        assert entry["engine"] == "horizon"
        # Everything must survive a JSON round-trip.
        assert json.loads(json.dumps(artifact)) == artifact

    def test_table_mentions_every_scenario(self):
        results = [run_scenario(BENCH_REGISTRY["pipeline"], quick=True,
                                repeats=1)]
        table = format_bench_table(results)
        assert "pipeline" in table
        assert "sim_us/wall_s" in table


class TestBenchCli:
    def test_list_scenarios(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "overload64" in out
        assert "webfarm" in out

    def test_bench_writes_artifact(self, tmp_path, capsys, monkeypatch):
        # Shrink the scenario so the CLI test is fast even at --quick.
        scenario = BENCH_REGISTRY["overload64"]
        monkeypatch.setitem(
            BENCH_REGISTRY,
            "overload64",
            dataclasses.replace(scenario, quick_sim_us=TINY_US),
        )
        out_path = tmp_path / "BENCH_kernel.json"
        code = main([
            "bench", "overload64", "--quick", "--repeats", "1",
            "--json", str(out_path),
        ])
        assert code == 0
        artifact = json.loads(out_path.read_text())
        assert artifact["schema_version"] == BENCH_SCHEMA_VERSION
        assert artifact["scenarios"][0]["name"] == "overload64"
        assert "overload64" in capsys.readouterr().out

    def test_bench_json_stdout(self, capsys, monkeypatch):
        scenario = BENCH_REGISTRY["pipeline"]
        monkeypatch.setitem(
            BENCH_REGISTRY,
            "pipeline",
            dataclasses.replace(scenario, quick_sim_us=TINY_US),
        )
        assert main(["bench", "pipeline", "--quick", "--repeats", "1",
                     "--json", "-"]) == 0
        artifact = json.loads(capsys.readouterr().out)
        assert artifact["kind"] == "bench"

    def test_unknown_scenario_is_cli_error(self, capsys):
        assert main(["bench", "nonesuch"]) == 2
        assert "unknown bench scenario" in capsys.readouterr().err


def test_json_flag_swallowing_scenario_name_is_caught(capsys):
    """`bench --json overload64` must error, not benchmark everything."""
    assert main(["bench", "--json", "overload64"]) == 2
    err = capsys.readouterr().err
    assert "overload64" in err and "--json" in err


def _shrink_registry(monkeypatch, names=None):
    """Clamp quick durations so CLI-level bench runs stay fast."""
    for name in names or list(BENCH_REGISTRY):
        monkeypatch.setitem(
            BENCH_REGISTRY,
            name,
            dataclasses.replace(BENCH_REGISTRY[name], quick_sim_us=TINY_US),
        )


def test_typoed_scenario_as_json_path_warns(tmp_path, monkeypatch, capsys):
    """`bench overlaod64 --json` (typo) is parsed as --json's output
    path; exact matches are errors, near-misses must at least warn."""
    _shrink_registry(monkeypatch, ["overload64"])
    out_path = tmp_path / "overlaod64"
    assert main(["bench", "overload64", "--quick", "--repeats", "1",
                 "--json", str(out_path)]) == 0
    err = capsys.readouterr().err
    assert "looks like scenario" in err and "overload64" in err
    # A clearly path-shaped value stays silent.
    assert main(["bench", "overload64", "--quick", "--repeats", "1",
                 "--json", str(tmp_path / "perf.json")]) == 0
    assert "looks like scenario" not in capsys.readouterr().err


class TestCompareCliGate:
    def _baseline_with_ghost(self, tmp_path):
        results = [run_scenario(BENCH_REGISTRY["overload64"], quick=True,
                                repeats=1)]
        baseline = bench_to_dict(results, quick=True, repeats=1)
        ghost = dict(baseline["scenarios"][0], name="ghost_scenario")
        baseline["scenarios"].append(ghost)
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        return path

    def test_full_compare_fails_on_missing_baseline_scenario(
        self, tmp_path, monkeypatch, capsys
    ):
        """A bare --compare claims full coverage, so a baseline scenario
        the run failed to produce must fail the gate, not pass silently."""
        _shrink_registry(monkeypatch)
        path = self._baseline_with_ghost(tmp_path)
        code = main(["bench", "--quick", "--repeats", "1",
                     "--compare", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "MISSING" in out
        assert "ghost_scenario" in out

    def test_subset_compare_ignores_unrequested_baseline_scenarios(
        self, tmp_path, monkeypatch, capsys
    ):
        """`bench overload64 --compare` is an intentional partial run;
        other baseline scenarios being absent is not a failure."""
        _shrink_registry(monkeypatch, ["overload64"])
        path = self._baseline_with_ghost(tmp_path)
        code = main(["bench", "overload64", "--quick", "--repeats", "1",
                     "--compare", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "MISSING" not in out


def test_quick_json_defaults_away_from_tracked_baseline(
    tmp_path, monkeypatch, capsys
):
    """Bare `--quick --json` must not overwrite BENCH_kernel.json."""
    for name in ("webserver", "webfarm", "overload64",
                 "overload64_controller", "pipeline"):
        monkeypatch.setitem(
            BENCH_REGISTRY,
            name,
            dataclasses.replace(BENCH_REGISTRY[name], quick_sim_us=TINY_US),
        )
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_kernel.json").write_text("tracked baseline")
    assert main(["bench", "--quick", "--repeats", "1", "--json"]) == 0
    assert (tmp_path / "BENCH_kernel.json").read_text() == "tracked baseline"
    artifact = json.loads((tmp_path / "BENCH_kernel.quick.json").read_text())
    assert artifact["quick"] is True


class TestCompareAndHistory:
    def _results(self):
        return [run_scenario(BENCH_REGISTRY["overload64"], quick=True,
                             repeats=1)]

    def test_compare_detects_regression_and_pass(self, tmp_path):
        from repro.bench import (
            compare_to_baseline,
            format_compare_table,
            load_bench_artifact,
        )

        results = self._results()
        fresh = results[0].sim_us_per_wall_s
        baseline = bench_to_dict(results, quick=True, repeats=1)
        # Identical numbers: never a regression.
        comparisons = compare_to_baseline(results, baseline, threshold=0.25)
        (c,) = comparisons
        assert c.ratio == pytest.approx(1.0)
        assert not c.regressed
        # Inflate the baseline so the fresh run looks 10x slower.
        baseline["scenarios"][0]["sim_us_per_wall_s"] = fresh * 10
        (c,) = compare_to_baseline(results, baseline, threshold=0.25)
        assert c.regressed
        table = format_compare_table([c])
        assert "REGRESSED" in table
        # Round-trip through a file, as the CLI does.
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        loaded = load_bench_artifact(str(path))
        (c,) = compare_to_baseline(results, loaded, threshold=0.25)
        assert c.regressed

    def test_compare_without_matching_scenario_is_informational(self):
        """Fresh-but-not-in-baseline stays informational; the reverse
        direction (baseline-but-not-fresh) is a MISSING row."""
        from repro.bench import compare_to_baseline, format_compare_table

        results = self._results()
        baseline = bench_to_dict(results, quick=True, repeats=1)
        baseline["scenarios"][0]["name"] = "something_else"
        fresh_only, ghost = compare_to_baseline(results, baseline)
        assert fresh_only.name == results[0].name
        assert fresh_only.ratio is None
        assert not fresh_only.regressed
        assert not fresh_only.missing
        assert ghost.name == "something_else"
        assert ghost.missing
        assert ghost.ratio is None
        assert not ghost.regressed
        assert "MISSING" in format_compare_table([ghost])

    def test_compare_reports_baseline_scenarios_missing_from_fresh(self):
        """Regression test: a baseline scenario absent from the fresh
        results used to be silently dropped, so a scenario crashing out
        of the suite read as 'no regressions'."""
        from repro.bench import compare_to_baseline

        results = self._results()
        baseline = bench_to_dict(results, quick=True, repeats=1)
        ghost = dict(baseline["scenarios"][0], name="ghost_scenario")
        baseline["scenarios"].append(ghost)
        comparisons = compare_to_baseline(results, baseline)
        assert [c.name for c in comparisons] == [results[0].name,
                                                 "ghost_scenario"]
        assert comparisons[1].missing
        # An explicit expected subset suppresses unrelated ghosts …
        comparisons = compare_to_baseline(
            results, baseline, expected=[results[0].name]
        )
        assert [c.name for c in comparisons] == [results[0].name]
        # … but still flags an expected scenario that went missing.
        comparisons = compare_to_baseline(
            results, baseline, expected=[results[0].name, "ghost_scenario"]
        )
        assert comparisons[-1].name == "ghost_scenario"
        assert comparisons[-1].missing

    def test_compare_rejects_bad_baselines(self, tmp_path):
        from repro.bench import compare_to_baseline, load_bench_artifact

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(BenchError, match="not valid JSON"):
            load_bench_artifact(str(bad))
        with pytest.raises(BenchError, match="cannot read"):
            load_bench_artifact(str(tmp_path / "missing.json"))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"kind": "experiment"}))
        with pytest.raises(BenchError, match="not a bench artifact"):
            load_bench_artifact(str(wrong))
        results = self._results()
        baseline = bench_to_dict(results, quick=True, repeats=1)
        with pytest.raises(BenchError, match="threshold"):
            compare_to_baseline(results, baseline, threshold=1.5)

    def test_history_line_and_append(self, tmp_path):
        from repro.bench import append_history, history_line

        results = self._results()
        record = history_line(results, quick=False, repeats=1)
        assert record["kind"] == "bench_history"
        assert "overload64" in record["scenarios"]
        assert record["scenarios"]["overload64"] > 0
        assert record["engines"]["overload64"] == "horizon"
        assert record["git_sha"]
        path = tmp_path / "BENCH_history.jsonl"
        append_history(results, str(path), quick=False, repeats=1)
        append_history(results, str(path), quick=False, repeats=1)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            parsed = json.loads(line)
            assert parsed["kind"] == "bench_history"


class TestCompareCli:
    def _shrink(self, monkeypatch, name="overload64"):
        scenario = BENCH_REGISTRY[name]
        monkeypatch.setitem(
            BENCH_REGISTRY,
            name,
            dataclasses.replace(scenario, quick_sim_us=TINY_US),
        )

    def test_cli_compare_pass_and_fail(self, tmp_path, monkeypatch, capsys):
        self._shrink(monkeypatch)
        # Build a baseline artifact from a real quick run.
        results = [run_scenario(BENCH_REGISTRY["overload64"], quick=True,
                                repeats=1)]
        baseline = bench_to_dict(results, quick=True, repeats=1)
        base_path = tmp_path / "base.json"
        base_path.write_text(json.dumps(baseline))
        code = main(["bench", "overload64", "--quick", "--repeats", "1",
                     "--compare", str(base_path), "--threshold", "0.99"])
        assert code == 0
        assert "ok" in capsys.readouterr().out
        # An impossibly fast baseline forces the regression exit.
        baseline["scenarios"][0]["sim_us_per_wall_s"] = 1e15
        base_path.write_text(json.dumps(baseline))
        code = main(["bench", "overload64", "--quick", "--repeats", "1",
                     "--compare", str(base_path), "--threshold", "0.25"])
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "perf regression" in out

    def test_cli_nonquick_appends_history(self, tmp_path, monkeypatch, capsys):
        scenario = BENCH_REGISTRY["overload64"]
        monkeypatch.setitem(
            BENCH_REGISTRY,
            "overload64",
            dataclasses.replace(scenario, sim_us=TINY_US),
        )
        history = tmp_path / "hist.jsonl"
        code = main(["bench", "overload64", "--repeats", "1",
                     "--history", str(history)])
        assert code == 0
        (line,) = history.read_text().splitlines()
        assert json.loads(line)["scenarios"]["overload64"] > 0
        # --no-history suppresses the append.
        code = main(["bench", "overload64", "--repeats", "1",
                     "--history", str(history), "--no-history"])
        assert code == 0
        assert len(history.read_text().splitlines()) == 1

    def test_compare_flag_swallowing_scenario_name_is_caught(self, capsys):
        assert main(["bench", "--compare", "overload64"]) == 2
        err = capsys.readouterr().err
        assert "overload64" in err and "--compare" in err
