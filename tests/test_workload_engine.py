"""Unit tests for the open-system workload engine.

Covers the arrival processes (determinism, live rate changes, trace
parsing), the engine's spawn/complete/reject/kill bookkeeping, the
phase-script actions, and the kernel/scheduler churn contract they
depend on (``Kernel.kill_thread``, the affinity epoch bump,
``ProportionAllocator.would_admit``).
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import SimulationError, ThreadStateError
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, Sleep
from repro.sim.thread import ThreadState
from repro.system import build_real_rate_system
from repro.workloads.arrivals import (
    ArrivalError,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workloads.engine import (
    JobTemplate,
    PhaseScript,
    WorkloadEngine,
    WorkloadError,
    dispatch_fingerprint,
)


def take_times(process, n, start_us=0):
    return [t for t, _ in itertools.islice(process.schedule(start_us), n)]


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class TestArrivalProcesses:
    def test_deterministic_interval_and_rate(self):
        arrivals = DeterministicArrivals(2_500)
        assert take_times(arrivals, 4, start_us=100) == [2_600, 5_100, 7_600, 10_100]
        per_second = DeterministicArrivals.per_second(200.0)
        assert per_second.interval_us == 5_000
        per_second.set_rate(1000.0)
        assert per_second.interval_us == 1_000

    def test_deterministic_rate_change_applies_to_later_gaps(self):
        arrivals = DeterministicArrivals(1_000)
        schedule = arrivals.schedule(0)
        assert next(schedule)[0] == 1_000
        arrivals.set_rate(100.0)  # 10 ms gaps from here on
        assert next(schedule)[0] == 11_000

    def test_poisson_is_seed_deterministic(self):
        a = take_times(PoissonArrivals(500.0, seed=9), 50)
        b = take_times(PoissonArrivals(500.0, seed=9), 50)
        c = take_times(PoissonArrivals(500.0, seed=10), 50)
        assert a == b
        assert a != c
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))

    def test_mmpp_bursts_and_silence(self):
        # High-rate bursts separated by zero-rate silences: gaps inside
        # a burst are small, gaps across a silence are large.
        arrivals = MMPPArrivals([(2_000.0, 5_000), (0.0, 50_000)], seed=3)
        times = take_times(arrivals, 200)
        gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
        assert min(gaps) < 2_000
        assert max(gaps) > 20_000

    def test_mmpp_validation(self):
        with pytest.raises(ArrivalError, match="at least one phase"):
            MMPPArrivals([], seed=1)
        with pytest.raises(ArrivalError, match="rate > 0"):
            MMPPArrivals([(0.0, 1_000)], seed=1)
        with pytest.raises(ArrivalError, match="dwell"):
            MMPPArrivals([(10.0, 0)], seed=1)

    def test_rate_validation(self):
        with pytest.raises(ArrivalError):
            PoissonArrivals(0.0, seed=1)
        with pytest.raises(ArrivalError):
            DeterministicArrivals(0)
        with pytest.raises(ArrivalError, match="no adjustable rate"):
            TraceArrivals.from_times([0]).set_rate(1.0)

    def test_trace_parse(self):
        trace = TraceArrivals.parse(
            """
            # comment
            0 web
            0 web          # herd: same timestamp twice
            1500
            2000 batch
            """
        )
        assert trace.entries == [(0, "web"), (0, "web"), (1500, None), (2000, "batch")]
        assert list(trace.schedule(100)) == [
            (100, "web"), (100, "web"), (1600, None), (2100, "batch")
        ]

    def test_trace_validation(self):
        with pytest.raises(ArrivalError, match="no arrivals"):
            TraceArrivals.parse("# nothing\n")
        with pytest.raises(ArrivalError, match="non-decreasing"):
            TraceArrivals.from_times([100, 50])
        with pytest.raises(ArrivalError, match="not an integer"):
            TraceArrivals.parse("abc web")
        with pytest.raises(ArrivalError, match="offset_us"):
            TraceArrivals.parse("1 two three")
        with pytest.raises(ArrivalError, match="negative"):
            TraceArrivals.from_times([-1])

    def test_trace_accepts_zero_padded_offsets(self):
        trace = TraceArrivals.parse("000500 web\n001000\n")
        assert trace.entries == [(500, "web"), (1000, None)]

    def test_trace_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("10 web\n20\n")
        trace = TraceArrivals.from_file(str(path))
        assert trace.entries == [(10, "web"), (20, None)]
        with pytest.raises(ArrivalError, match="cannot read"):
            TraceArrivals.from_file(str(tmp_path / "missing.txt"))


# ----------------------------------------------------------------------
# job templates
# ----------------------------------------------------------------------
class TestJobTemplate:
    def test_validation(self):
        with pytest.raises(WorkloadError, match="total_cpu_us"):
            JobTemplate("t", total_cpu_us=0)
        with pytest.raises(WorkloadError, match="burst_us"):
            JobTemplate("t", burst_us=0)
        with pytest.raises(WorkloadError, match="negative"):
            JobTemplate("t", think_us=-1)

    def test_retime_whitelist(self):
        template = JobTemplate("t", total_cpu_us=5_000)
        template.retime(total_cpu_us=2_000, burst_us=500)
        assert template.total_cpu_us == 2_000
        with pytest.raises(WorkloadError, match="not retimable"):
            template.retime(priority=3)
        with pytest.raises(WorkloadError, match="total_cpu_us"):
            template.retime(total_cpu_us=0)
        # A rejected retime rolls back completely: live job bodies must
        # never observe a half-applied invalid update.
        with pytest.raises(WorkloadError, match="burst_us"):
            template.retime(total_cpu_us=9_000, burst_us=0)
        assert template.total_cpu_us == 2_000
        assert template.burst_us == 500

    def test_resolve_pin(self):
        assert JobTemplate("t").resolve_pin(5) is None
        assert JobTemplate("t", pin=2).resolve_pin(5) == 2
        assert JobTemplate("t", pin=lambda i: i % 3).resolve_pin(5) == 2


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class TestWorkloadEngine:
    def _bare(self, n_cpus=1):
        kernel = Kernel(
            ReservationScheduler(), n_cpus=n_cpus, record_dispatches=True
        )
        return kernel, WorkloadEngine(kernel)

    def test_spawn_complete_bookkeeping(self):
        kernel, engine = self._bare()
        stream = engine.add_stream(
            "jobs",
            DeterministicArrivals(10_000),
            JobTemplate("j", total_cpu_us=2_000, burst_us=1_000),
        )
        engine.start()
        kernel.run_for(65_000)
        assert stream.spawned == 6
        assert stream.completed >= 5
        assert stream.rejected == 0
        assert len(stream.live) == stream.spawned - stream.completed
        done = [r for r in stream.records if r.outcome == "completed"]
        assert len(done) == stream.completed
        assert len(stream.inflight) == len(stream.live)
        assert stream.mean_sojourn_us() > 0
        # Every record carries the tag and a consistent timeline.
        for record in done:
            assert record.tag == "j"
            assert record.end_us >= record.spawn_us
            assert record.sojourn_us == record.end_us - record.spawn_us
        # Completed jobs really exited and their names are unique.
        names = [t.name for t in kernel.threads]
        assert len(names) == len(set(names))

    def test_kill_records_every_victim(self):
        kernel, engine = self._bare()
        stream = engine.add_stream(
            "jobs",
            DeterministicArrivals(5_000),
            JobTemplate("j", total_cpu_us=500_000, burst_us=1_000),
        )
        engine.start()
        kernel.run_for(20_000)
        assert len(stream.live) >= 3
        live_before = len(stream.live)
        assert engine.kill(stream) == live_before
        assert stream.killed == live_before
        assert not stream.live and not stream.inflight
        killed_records = [r for r in stream.records if r.outcome == "killed"]
        assert len(killed_records) == live_before
        for record in killed_records:
            assert record.end_us == kernel.now
            assert record.sojourn_us >= 0

    def test_out_of_band_kill_does_not_corrupt_accounting(self):
        """Regression: a thread force-killed behind the engine's back
        (``kernel.kill_thread`` called directly) used to be popped from
        ``live`` without being counted, breaking the
        spawned == completed + killed + live invariant."""
        kernel, engine = self._bare()
        stream = engine.add_stream(
            "jobs",
            DeterministicArrivals(5_000),
            JobTemplate("j", total_cpu_us=500_000, burst_us=1_000),
        )
        engine.start()
        kernel.run_for(20_000)
        live_before = len(stream.live)
        assert live_before >= 2
        # Kill one live thread out of band; the engine does not see it.
        first_index = next(iter(stream.live))
        assert kernel.kill_thread(stream.live[first_index])
        # The engine's own kill now hits an already-EXITED victim.
        assert engine.kill(stream) == live_before - 1
        # …but the victim is still accounted (it did not complete).
        assert stream.killed == live_before
        assert not stream.live and not stream.inflight
        assert stream.spawned == (
            stream.completed + stream.killed + len(stream.live)
        )
        assert len(stream.records) == stream.completed + stream.killed

    def test_mean_sojourn_is_nan_without_completions(self):
        """Regression: a stream that never finished anything used to
        report a 0.0 mean sojourn — indistinguishable from an
        infinitely fast one."""
        import math

        kernel, engine = self._bare()
        stream = engine.add_stream(
            "jobs",
            DeterministicArrivals(5_000),
            JobTemplate("j", total_cpu_us=500_000, burst_us=1_000),
        )
        engine.start()
        kernel.run_for(20_000)
        assert stream.completed == 0 and stream.spawned > 0
        assert math.isnan(stream.mean_sojourn_us())
        assert math.isnan(engine.mean_sojourn_us())
        assert stream.completed_sojourns_us() == []

    def test_max_arrivals_and_stop_us(self):
        kernel, engine = self._bare()
        capped = engine.add_stream(
            "capped", DeterministicArrivals(5_000),
            JobTemplate("c", total_cpu_us=500), max_arrivals=3,
        )
        stopped = engine.add_stream(
            "stopped", DeterministicArrivals(5_000),
            JobTemplate("s", total_cpu_us=500), stop_us=12_000,
        )
        engine.start()
        kernel.run_for(100_000)
        assert capped.arrivals_seen() == 3
        assert stopped.arrivals_seen() == 2  # arrivals at 5ms and 10ms

    def test_stream_added_after_start_launches(self):
        kernel, engine = self._bare()
        engine.start()
        kernel.run_for(10_000)
        late = engine.add_stream(
            "late", DeterministicArrivals(5_000),
            JobTemplate("l", total_cpu_us=500),
        )
        kernel.run_for(20_000)
        assert late.spawned >= 3

    def test_duplicate_stream_and_double_start(self):
        kernel, engine = self._bare()
        engine.add_stream("a", DeterministicArrivals(1_000), JobTemplate("a"))
        with pytest.raises(WorkloadError, match="already exists"):
            engine.add_stream("a", DeterministicArrivals(1_000), JobTemplate("a"))
        engine.start()
        with pytest.raises(WorkloadError, match="already started"):
            engine.start()
        assert engine.stream("a").name == "a"
        with pytest.raises(WorkloadError, match="no stream named"):
            engine.stream("zzz")

    def test_spec_without_allocator_rejected_at_add(self):
        kernel, engine = self._bare()
        with pytest.raises(WorkloadError, match="no allocator"):
            engine.add_stream(
                "rt", DeterministicArrivals(1_000),
                JobTemplate("rt", spec=ThreadSpec()),
            )

    def test_bare_reservation_jobs_run_and_best_effort_jobs_run(self):
        kernel, engine = self._bare()
        reserved = engine.add_stream(
            "res", DeterministicArrivals(10_000),
            JobTemplate("r", total_cpu_us=1_000, reservation=(100, 10_000)),
        )
        best_effort = engine.add_stream(
            "be", DeterministicArrivals(10_000),
            JobTemplate("b", total_cpu_us=1_000),
        )
        engine.start()
        kernel.run_for(60_000)
        assert reserved.completed > 0
        assert best_effort.completed > 0

    def test_tagged_trace_selects_templates(self):
        kernel, engine = self._bare()
        trace = TraceArrivals.parse("0 a\n1000 b\n2000\n")
        stream = engine.add_stream(
            "mix",
            trace,
            JobTemplate("default", total_cpu_us=400),
            templates={
                "a": JobTemplate("small", total_cpu_us=200),
                "b": JobTemplate("big", total_cpu_us=5_000),
            },
        )
        engine.start()
        kernel.run_for(30_000)
        assert stream.spawned == 3
        names = {t.name for t in kernel.threads}
        assert names == {"mix.0", "mix.1", "mix.2"}

    def test_unknown_trace_tag_raises(self):
        kernel, engine = self._bare()
        engine.add_stream(
            "mix", TraceArrivals.parse("0 nope\n"), JobTemplate("d")
        )
        engine.start()
        with pytest.raises(WorkloadError, match="no template"):
            kernel.run_for(1_000)

    def test_admission_on_arrival_rejects_and_reclaims(self):
        system = build_real_rate_system(record_dispatches=True)
        engine = WorkloadEngine(system.kernel, allocator=system.allocator)
        # Each job wants 400 ppt; the admission threshold (90%) fits two
        # at a time.  Arrivals outrun completions at first, so some are
        # rejected; once jobs finish, freed capacity readmits.
        stream = engine.add_stream(
            "rt",
            DeterministicArrivals(3_000),
            JobTemplate(
                "rt", total_cpu_us=20_000, burst_us=1_000,
                spec=ThreadSpec(proportion_ppt=400, period_us=10_000),
            ),
            max_arrivals=20,
        )
        engine.start()
        system.run_for(400_000)
        assert stream.rejected > 0
        assert stream.spawned >= 2
        assert stream.completed > 2, "freed capacity must readmit arrivals"

    def test_would_admit_matches_register(self):
        system = build_real_rate_system()
        allocator = system.allocator
        assert allocator.would_admit(400)
        t1 = system.spawn_controlled(
            "rt1", None, spec=ThreadSpec(proportion_ppt=400, period_us=10_000)
        )
        assert allocator.would_admit(400)
        system.spawn_controlled(
            "rt2", None, spec=ThreadSpec(proportion_ppt=400, period_us=10_000)
        )
        assert not allocator.would_admit(400)
        assert allocator.would_admit(80)
        # Reclaim on exit: capacity frees the instant the thread dies.
        system.kernel.kill_thread(t1)
        assert allocator.would_admit(400)


# ----------------------------------------------------------------------
# Kernel.kill_thread (the forced-exit path)
# ----------------------------------------------------------------------
class TestKillThread:
    @staticmethod
    def _compute_body(us):
        def body(env):
            yield Compute(us)

        return body

    def test_kill_ready_thread(self, rr_kernel):
        thread = rr_kernel.spawn("victim", self._compute_body(10_000))
        rr_kernel.run_for(1_000)
        assert rr_kernel.kill_thread(thread) is True
        assert thread.state == ThreadState.EXITED
        assert thread.exit_status == -9
        assert not rr_kernel.scheduler.has_thread(thread)
        # Idempotent on the already-dead.
        assert rr_kernel.kill_thread(thread) is False
        rr_kernel.run_for(5_000)  # the kernel keeps running fine

    def test_kill_sleeping_thread_cancels_wakeup(self, rr_kernel):
        def sleeper(env):
            yield Compute(100)
            yield Sleep(50_000)
            yield Compute(100)

        thread = rr_kernel.spawn("sleeper", sleeper)
        rr_kernel.run_for(2_000)
        assert thread.state == ThreadState.SLEEPING
        assert rr_kernel.kill_thread(thread)
        assert thread.wakeup_event is None
        rr_kernel.run_for(100_000)
        assert thread.accounting.total_us <= 200

    def test_kill_foreign_thread_raises(self, rr_kernel):
        from repro.sim.thread import SimThread

        foreign = SimThread("foreign", None)
        with pytest.raises(SimulationError, match="not part of this kernel"):
            rr_kernel.kill_thread(foreign)

    def test_kill_blocked_getter_unblocks_queue(self):
        kernel = Kernel(
            RoundRobinScheduler(),
            charge_dispatch_overhead=False,
            syscall_cost_us=0,
            deadlock_detection=False,
        )
        channel = BoundedBuffer("q", 1_024)

        def getter(env):
            yield Get(channel, 600)

        def small_getter(env):
            yield Get(channel, 100)
            yield Compute(100)

        def putter(env):
            yield Put(channel, 100)

        # Sequenced spawns pin the waiter-queue order: big blocks at
        # the head, small behind it, then 100 bytes arrive — not enough
        # for the head, so small is stuck behind big.
        big = kernel.spawn("big", getter)
        kernel.run_for(2_000)
        small = kernel.spawn("small", small_getter)
        kernel.run_for(2_000)
        kernel.spawn("putter", putter)
        kernel.run_for(2_000)
        assert big.state == ThreadState.BLOCKED
        assert small.state == ThreadState.BLOCKED
        assert kernel.kill_thread(big)
        # Killing the head re-services the queue: small gets its bytes.
        kernel.run_for(5_000)
        assert small.state == ThreadState.EXITED
        assert small.exit_status == 0

    def test_kill_waiter_undoes_priority_inheritance(self):
        from repro.ipc.mutex import Mutex
        from repro.sched.priority import FixedPriorityScheduler
        from repro.sim.requests import AcquireMutex, ReleaseMutex

        kernel = Kernel(
            FixedPriorityScheduler(priority_inheritance=True),
            charge_dispatch_overhead=False,
            syscall_cost_us=0,
        )
        mutex = Mutex("m")

        def holder(env):
            yield AcquireMutex(mutex)
            yield Compute(60_000)
            yield ReleaseMutex(mutex)

        def waiter(delay_us):
            def body(env):
                yield Sleep(delay_us)
                yield AcquireMutex(mutex)
                yield ReleaseMutex(mutex)

            return body

        owner = kernel.spawn("owner", holder, priority=1)
        # mid must reach the mutex before the boost to 10 starves it.
        mid = kernel.spawn("mid", waiter(1_000), priority=5)
        high = kernel.spawn("high", waiter(2_500), priority=10)
        kernel.run_for(5_000)
        assert owner.priority == 10  # boosted by the high waiter
        # Killing the high-priority waiter recomputes the boost from
        # the waiters still queued (mid, priority 5)...
        assert kernel.kill_thread(high)
        assert owner.priority == 5
        # ...and killing the last waiter restores the base priority.
        assert kernel.kill_thread(mid)
        assert owner.priority == 1
        kernel.run_for(100_000)
        assert mutex.owner is None

    def test_kill_waiter_leaves_mutex_consistent(self, rr_kernel):
        from repro.ipc.mutex import Mutex
        from repro.sim.requests import AcquireMutex, ReleaseMutex

        mutex = Mutex("m")

        def holder(env):
            yield AcquireMutex(mutex)
            yield Compute(10_000)
            yield ReleaseMutex(mutex)

        def waiter(env):
            # Sleep past the holder's acquisition so the contention
            # order is fixed regardless of dispatch order.
            yield Sleep(2_000)
            yield AcquireMutex(mutex)
            yield ReleaseMutex(mutex)

        rr_kernel.spawn("holder", holder)
        blocked = rr_kernel.spawn("waiter", waiter)
        rr_kernel.run_for(4_000)
        assert blocked.state == ThreadState.BLOCKED
        assert rr_kernel.kill_thread(blocked)
        assert blocked not in mutex.waiters
        rr_kernel.run_for(20_000)
        assert mutex.owner is None  # released cleanly, no dead successor


# ----------------------------------------------------------------------
# affinity epoch bump
# ----------------------------------------------------------------------
class TestAffinityEpoch:
    def test_live_repin_bumps_epoch(self):
        kernel = Kernel(RoundRobinScheduler(), n_cpus=2)
        def body(env):
            yield Compute(50_000)

        thread = kernel.spawn("t", body)
        kernel.run_for(1_000)
        before = kernel.scheduler.state_epoch
        thread.pin_to(1)
        assert kernel.scheduler.state_epoch == before + 1
        # A no-op re-pin to the same CPU does not churn the epoch.
        thread.pin_to(1)
        assert kernel.scheduler.state_epoch == before + 1
        thread.pin_to(None)
        assert kernel.scheduler.state_epoch == before + 2

    def test_unbound_pin_does_not_need_a_kernel(self):
        from repro.sim.thread import SimThread

        thread = SimThread("loose", None)
        thread.pin_to(3)  # no kernel: validated later at add_thread
        assert thread.affinity == 3


# ----------------------------------------------------------------------
# phase scripts
# ----------------------------------------------------------------------
class TestPhaseScript:
    def test_actions_fire_in_time_order(self):
        kernel = Kernel(ReservationScheduler())
        engine = WorkloadEngine(kernel)
        fired = []
        script = PhaseScript()
        script.at(20_000, lambda eng, now: fired.append(("b", now)))
        script.at(10_000, lambda eng, now: fired.append(("a", now)))
        engine.start(script)
        kernel.run_for(30_000)
        assert fired == [("a", 10_000), ("b", 20_000)]

    def test_mid_run_install_rejects_past_actions(self):
        kernel = Kernel(ReservationScheduler())
        engine = WorkloadEngine(kernel)
        kernel.run_for(50_000)
        script = PhaseScript()
        script.at(20_000, lambda eng, now: None)
        with pytest.raises(WorkloadError, match="already in the past"):
            engine.start(script)

    def test_script_install_once_and_validation(self):
        script = PhaseScript()
        with pytest.raises(WorkloadError, match="negative"):
            script.at(-1, lambda eng, now: None)
        kernel = Kernel(ReservationScheduler())
        engine = WorkloadEngine(kernel)
        engine.start(script)
        with pytest.raises(WorkloadError, match="already installed"):
            script.install(engine)
        with pytest.raises(WorkloadError, match="already installed"):
            script.at(1_000, lambda eng, now: None)

    def test_kill_repin_retime_actions(self):
        kernel = Kernel(
            ReservationScheduler(), n_cpus=2, record_dispatches=True
        )
        engine = WorkloadEngine(kernel)
        template = JobTemplate("j", total_cpu_us=50_000, burst_us=1_000)
        stream = engine.add_stream(
            "jobs", DeterministicArrivals(5_000), template, max_arrivals=4
        )
        script = PhaseScript()
        script.retime(25_000, template, total_cpu_us=2_000)
        script.repin(30_000, stream, 1)
        script.kill(40_000, stream, count=1)
        engine.start(script)
        kernel.run_for(35_000)
        assert all(t.affinity == 1 for t in stream.live.values())
        kernel.run_for(65_000)
        assert stream.killed + stream.completed == stream.spawned == 4
        # The retime shrank demand: everything drains quickly.
        assert len(stream.live) == 0

    def test_set_reservation_action(self):
        kernel = Kernel(ReservationScheduler())
        scheduler = kernel.scheduler
        engine = WorkloadEngine(kernel)
        stream = engine.add_stream(
            "rt", DeterministicArrivals(5_000),
            JobTemplate(
                "rt", total_cpu_us=200_000, burst_us=1_000,
                reservation=(50, 10_000),
            ),
            max_arrivals=2,
        )
        script = PhaseScript()
        script.set_reservation(20_000, stream, 200, 5_000)
        engine.start(script)
        kernel.run_for(30_000)
        for thread in stream.live.values():
            reservation = scheduler.reservation(thread)
            assert reservation.proportion_ppt == 200
            assert reservation.period_us == 5_000

    def test_set_reservation_requires_reservation_scheduler(self):
        kernel = Kernel(RoundRobinScheduler())
        engine = WorkloadEngine(kernel)
        stream = engine.add_stream(
            "jobs", DeterministicArrivals(5_000), JobTemplate("j")
        )
        with pytest.raises(WorkloadError, match="no\\s+reservations"):
            engine.set_reservation(stream, 100, 10_000)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestDispatchFingerprint:
    def test_requires_recording(self):
        kernel = Kernel(RoundRobinScheduler())
        with pytest.raises(WorkloadError, match="record_dispatches"):
            dispatch_fingerprint(kernel)

    def test_identical_runs_identical_fingerprints(self):
        def build():
            kernel = Kernel(RoundRobinScheduler(), record_dispatches=True)
            engine = WorkloadEngine(kernel)
            engine.add_stream(
                "jobs", PoissonArrivals(300.0, seed=2),
                JobTemplate("j", total_cpu_us=1_500, think_us=400),
            )
            engine.start()
            kernel.run_for(50_000)
            return kernel

        assert dispatch_fingerprint(build()) == dispatch_fingerprint(build())
