"""Serialization and table-rendering tests for ExperimentResult."""

import json

import pytest

from repro._version import __version__
from repro.analysis.results import (
    NO_PAPER_VALUE,
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    format_table,
)


def full_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="demo",
        title="a demo result",
        metrics={"a": 1.0, "b": 2.5},
        paper_values={"a": 1.1},
        notes=["first note", "second note"],
        metadata={"experiment": "demo", "params": {"seed": 3, "xs": [1, 2]}},
    )
    result.add_series("curve", [0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
    return result


class TestRoundTrip:
    def test_dict_round_trip_is_equal(self):
        result = full_result()
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_json_round_trip_is_equal(self):
        result = full_result()
        assert ExperimentResult.from_json(result.to_json()) == result

    def test_series_survive_with_values(self):
        restored = ExperimentResult.from_json(full_result().to_json())
        assert restored.series["curve"] == ([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])

    def test_artifact_is_stamped_with_versions(self):
        data = full_result().to_dict()
        assert data["schema_version"] == RESULT_SCHEMA_VERSION
        assert data["repro_version"] == __version__

    def test_to_json_is_deterministic(self):
        result = full_result()
        assert result.to_json() == result.to_json()
        # Keys are sorted so artifacts diff cleanly.
        data = json.loads(result.to_json())
        assert list(data) == sorted(data)

    def test_unsupported_schema_version_rejected(self):
        data = full_result().to_dict()
        data["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.from_dict(data)

    def test_missing_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema version"):
            ExperimentResult.from_dict({"experiment_id": "x", "title": "t"})


class TestFormatTableAbsentPaperValues:
    def test_absent_paper_value_renders_em_dash(self):
        table = format_table([("m", None, 0.5)])
        assert NO_PAPER_VALUE in table
        assert "None" not in table

    def test_em_dash_aligns_with_numeric_column(self):
        table = format_table(
            [("long_metric_name", 0.125, 2.0), ("m2", None, 0.5)]
        )
        lines = table.splitlines()
        value_row = next(line for line in lines if "0.125" in line)
        dash_row = next(line for line in lines if NO_PAPER_VALUE in line)
        # Values are right-justified, so the dash ends in the same
        # column as the numeric paper value above it.
        paper_value_end = value_row.index("0.125") + len("0.125") - 1
        assert dash_row.index(NO_PAPER_VALUE) == paper_value_end

    def test_mixed_rows_keep_column_count(self):
        table = format_table([("a", 1.0, 2.0), ("b", None, 3.0)])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows

    def test_summary_uses_em_dash_for_unmatched_metrics(self):
        result = ExperimentResult(
            "x", "t", metrics={"a": 1.0, "b": 2.0}, paper_values={"a": 1.0}
        )
        summary = result.summary()
        assert NO_PAPER_VALUE in summary
