"""Unit and integration tests for the simulation kernel."""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.mutex import Mutex
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import DeadlockError
from repro.sim.kernel import Kernel
from repro.sim.requests import (
    AcquireMutex,
    Compute,
    Exit,
    Get,
    Put,
    ReleaseMutex,
    Sleep,
    WaitIO,
    Yield,
)
from repro.sim.thread import ThreadState

from tests.conftest import consumer_body, finite_body, producer_body, spin_body


def make_kernel(**kwargs) -> Kernel:
    defaults = dict(charge_dispatch_overhead=False, syscall_cost_us=0)
    defaults.update(kwargs)
    return Kernel(RoundRobinScheduler(), **defaults)


class TestBasicExecution:
    def test_single_thread_consumes_cpu(self):
        kernel = make_kernel()
        thread = kernel.spawn("worker", finite_body(5_000))
        kernel.run_for(10_000)
        assert thread.accounting.total_us == 5_000
        assert thread.state is ThreadState.EXITED

    def test_clock_reaches_end_time(self):
        kernel = make_kernel()
        kernel.spawn("worker", spin_body())
        kernel.run_for(25_000)
        assert kernel.now == 25_000

    def test_cpu_bound_thread_gets_all_cpu(self):
        kernel = make_kernel()
        thread = kernel.spawn("hog", spin_body())
        kernel.run_for(100_000)
        assert thread.accounting.total_us == 100_000

    def test_two_cpu_bound_threads_share_cpu(self):
        kernel = make_kernel()
        a = kernel.spawn("a", spin_body())
        b = kernel.spawn("b", spin_body())
        kernel.run_for(100_000)
        total = a.accounting.total_us + b.accounting.total_us
        assert total == 100_000
        # Round robin: each gets roughly half.
        assert abs(a.accounting.total_us - b.accounting.total_us) <= 2_000

    def test_run_until_rejects_past_time(self):
        kernel = make_kernel()
        kernel.run_for(1_000)
        with pytest.raises(ValueError):
            kernel.run_until(500)

    def test_idle_system_advances_to_end(self):
        kernel = make_kernel()
        kernel.run_for(50_000)
        assert kernel.now == 50_000
        assert kernel.idle_us == 50_000

    def test_exit_request_terminates_thread(self):
        def body(env):
            yield Compute(100)
            yield Exit(3)
            yield Compute(100)  # never reached

        kernel = make_kernel()
        thread = kernel.spawn("quitter", body)
        kernel.run_for(10_000)
        assert thread.state is ThreadState.EXITED
        assert thread.exit_status == 3
        assert thread.accounting.total_us == 100

    def test_yield_keeps_thread_runnable(self):
        def body(env):
            while True:
                yield Compute(10)
                yield Yield()

        kernel = make_kernel()
        thread = kernel.spawn("yielder", body)
        kernel.run_for(1_000)
        assert thread.state in (ThreadState.READY, ThreadState.RUNNING)
        assert thread.accounting.voluntary_switches > 0


class TestSleepAndIO:
    def test_sleep_consumes_no_cpu(self):
        def body(env):
            yield Compute(1_000)
            yield Sleep(20_000)
            yield Compute(1_000)

        kernel = make_kernel()
        thread = kernel.spawn("sleeper", body)
        kernel.run_for(50_000)
        assert thread.accounting.total_us == 2_000
        assert thread.state is ThreadState.EXITED

    def test_sleep_duration_respected(self):
        wake_times = []

        def body(env):
            yield Sleep(10_000)
            wake_times.append(env.now)

        kernel = make_kernel()
        kernel.spawn("sleeper", body)
        kernel.run_for(50_000)
        assert wake_times == [10_000]

    def test_wait_io_blocks_for_latency(self):
        completion = []

        def body(env):
            yield Compute(100)
            yield WaitIO(5_000, tag="disk")
            completion.append(env.now)

        kernel = make_kernel()
        thread = kernel.spawn("io", body)
        kernel.run_for(20_000)
        assert completion == [5_100]
        assert thread.accounting.blocks >= 1

    def test_other_threads_run_while_one_sleeps(self):
        def sleeper(env):
            yield Sleep(50_000)

        kernel = make_kernel()
        kernel.spawn("sleeper", sleeper)
        hog = kernel.spawn("hog", spin_body())
        kernel.run_for(50_000)
        assert hog.accounting.total_us == 50_000


class TestChannelBlocking:
    def test_producer_consumer_flow(self):
        queue = BoundedBuffer("q", 1_000)
        kernel = make_kernel()
        kernel.spawn("producer", producer_body(queue, 100, 500))
        kernel.spawn("consumer", consumer_body(queue, 100, 500))
        kernel.run_for(100_000)
        assert queue.total_put_bytes > 0
        assert queue.total_get_bytes > 0
        assert queue.total_get_bytes <= queue.total_put_bytes

    def test_consumer_blocks_on_empty_queue(self):
        queue = BoundedBuffer("q", 1_000)
        kernel = make_kernel()
        consumer = kernel.spawn("consumer", consumer_body(queue, 100, 10))
        kernel.spawn("idle", spin_body())
        kernel.run_for(10_000)
        assert consumer.state is ThreadState.BLOCKED
        assert consumer in queue.get_waiters

    def test_producer_blocks_on_full_queue(self):
        queue = BoundedBuffer("q", 200)
        kernel = make_kernel()
        producer = kernel.spawn("producer", producer_body(queue, 100, 10))
        kernel.spawn("idle", spin_body())
        kernel.run_for(10_000)
        assert producer.state is ThreadState.BLOCKED
        assert queue.fill_bytes() == 200

    def test_fill_level_bounded_by_capacity(self):
        queue = BoundedBuffer("q", 500)
        kernel = make_kernel()
        kernel.spawn("producer", producer_body(queue, 100, 10))
        kernel.spawn("consumer", consumer_body(queue, 100, 1_000))
        kernel.run_for(100_000)
        assert 0 <= queue.fill_bytes() <= 500

    def test_byte_conservation(self):
        queue = BoundedBuffer("q", 1_000)
        kernel = make_kernel()
        kernel.spawn("producer", producer_body(queue, 50, 100))
        kernel.spawn("consumer", consumer_body(queue, 50, 100))
        kernel.run_for(200_000)
        assert queue.total_put_bytes - queue.total_get_bytes == queue.fill_bytes()

    def test_blocked_consumer_wakes_when_data_arrives(self):
        queue = BoundedBuffer("q", 1_000)
        consumed_at = []

        def consumer(env):
            yield Get(queue, 100)
            consumed_at.append(env.now)

        def producer(env):
            yield Sleep(10_000)
            yield Compute(10)
            yield Put(queue, 100)

        kernel = make_kernel()
        kernel.spawn("consumer", consumer)
        kernel.spawn("producer", producer)
        kernel.run_for(50_000)
        assert len(consumed_at) == 1
        assert consumed_at[0] >= 10_000


class TestDeadlockDetection:
    def test_deadlock_raises(self):
        queue = BoundedBuffer("q", 1_000)

        def lone_consumer(env):
            yield Get(queue, 100)

        kernel = make_kernel(deadlock_detection=True)
        kernel.spawn("consumer", lone_consumer)
        with pytest.raises(DeadlockError):
            kernel.run_for(10_000)

    def test_deadlock_detection_can_be_disabled(self):
        queue = BoundedBuffer("q", 1_000)

        def lone_consumer(env):
            yield Get(queue, 100)

        kernel = make_kernel(deadlock_detection=False)
        kernel.spawn("consumer", lone_consumer)
        kernel.run_for(10_000)
        assert kernel.now == 10_000


class TestMutexes:
    def test_uncontended_acquire_release(self):
        mutex = Mutex("m")

        def body(env):
            yield AcquireMutex(mutex)
            yield Compute(100)
            yield ReleaseMutex(mutex)

        kernel = make_kernel()
        kernel.spawn("locker", body)
        kernel.run_for(10_000)
        assert mutex.owner is None
        assert mutex.acquisitions == 1

    def test_contended_mutex_serialises_critical_sections(self):
        mutex = Mutex("m")
        order = []

        def body_factory(name):
            def body(env):
                yield AcquireMutex(mutex)
                order.append((name, "enter", env.now))
                yield Compute(5_000)
                order.append((name, "leave", env.now))
                yield ReleaseMutex(mutex)

            return body

        kernel = make_kernel()
        kernel.spawn("a", body_factory("a"))
        kernel.spawn("b", body_factory("b"))
        kernel.run_for(100_000)
        # Critical sections must not interleave: enter/leave pairs nest.
        events = [(name, kind) for name, kind, _ in order]
        assert events in (
            [("a", "enter"), ("a", "leave"), ("b", "enter"), ("b", "leave")],
            [("b", "enter"), ("b", "leave"), ("a", "enter"), ("a", "leave")],
        )

    def test_release_by_non_owner_rejected(self):
        mutex = Mutex("m")

        def bad_body(env):
            yield ReleaseMutex(mutex)

        kernel = make_kernel()
        kernel.spawn("bad", bad_body)
        with pytest.raises(Exception):
            kernel.run_for(10_000)


class TestOverheadAccounting:
    def test_dispatch_overhead_steals_cpu(self):
        kernel = Kernel(
            RoundRobinScheduler(), charge_dispatch_overhead=True, syscall_cost_us=0
        )
        thread = kernel.spawn("hog", spin_body())
        kernel.run_for(1_000_000)
        assert kernel.stolen_dispatch_us > 0
        assert thread.accounting.total_us + kernel.stolen_us + kernel.idle_us == kernel.now

    def test_steal_cpu_advances_clock(self):
        kernel = make_kernel()
        kernel.steal_cpu(500)
        assert kernel.now == 500
        assert kernel.stolen_controller_us == 500

    def test_syscall_cost_charged(self):
        queue = BoundedBuffer("q", 10_000)

        def body(env):
            yield Put(queue, 10)
            yield Exit()

        kernel = Kernel(
            RoundRobinScheduler(), charge_dispatch_overhead=False, syscall_cost_us=3
        )
        thread = kernel.spawn("putter", body)
        kernel.run_for(1_000)
        assert thread.accounting.total_us == 3 * 2  # put + exit

    def test_total_time_conservation_without_overhead(self):
        kernel = make_kernel()
        a = kernel.spawn("a", spin_body())
        b = kernel.spawn("b", finite_body(10_000))
        kernel.run_for(200_000)
        busy = a.accounting.total_us + b.accounting.total_us
        assert busy + kernel.idle_us + kernel.stolen_us == kernel.now


class TestPeriodicCallbacks:
    def test_add_periodic_runs_callback(self):
        kernel = make_kernel()
        calls = []
        kernel.add_periodic(10_000, lambda now: calls.append(now))
        kernel.run_for(55_000)
        assert calls == [0, 10_000, 20_000, 30_000, 40_000, 50_000]
