"""Unit tests for the reservation-based proportion/period scheduler."""

import pytest

from repro.sched.rbs import (
    DEFAULT_PERIOD_US,
    PROPORTION_SCALE,
    Reservation,
    ReservationScheduler,
)
from repro.sim.errors import SchedulerError
from repro.sim.kernel import Kernel
from repro.sim.thread import SchedulingPolicy, SimThread, ThreadState

from tests.conftest import finite_body, spin_body


def make_kernel(**kwargs) -> Kernel:
    defaults = dict(charge_dispatch_overhead=False, syscall_cost_us=0)
    defaults.update(kwargs)
    return Kernel(ReservationScheduler(), **defaults)


class TestReservationState:
    def test_allocation_computed_from_proportion_and_period(self):
        reservation = Reservation(proportion_ppt=250, period_us=20_000)
        assert reservation.allocation_us == 5_000

    def test_invalid_proportion_rejected(self):
        with pytest.raises(SchedulerError):
            Reservation(proportion_ppt=1_001, period_us=10_000)
        with pytest.raises(SchedulerError):
            Reservation(proportion_ppt=-1, period_us=10_000)

    def test_invalid_period_rejected(self):
        with pytest.raises(SchedulerError):
            Reservation(proportion_ppt=100, period_us=0)

    def test_exhaustion(self):
        reservation = Reservation(proportion_ppt=100, period_us=10_000)
        assert not reservation.exhausted
        reservation.used_in_period_us = 1_000
        assert reservation.exhausted
        assert reservation.remaining_us == 0

    def test_advance_to_rolls_periods(self):
        reservation = Reservation(proportion_ppt=100, period_us=10_000)
        reservation.used_in_period_us = 500
        elapsed = reservation.advance_to(25_000)
        assert elapsed == 2
        assert reservation.period_start == 20_000
        assert reservation.used_in_period_us == 0

    def test_advance_to_within_period_is_noop(self):
        reservation = Reservation(proportion_ppt=100, period_us=10_000)
        reservation.used_in_period_us = 400
        assert reservation.advance_to(9_999) == 0
        assert reservation.used_in_period_us == 400

    def test_deadline_miss_recorded_when_demand_unmet(self):
        reservation = Reservation(proportion_ppt=100, period_us=10_000)
        reservation.wanted_more = True
        reservation.advance_to(10_000)
        assert reservation.deadline_misses == 1


class TestReservationManagement:
    def test_set_reservation_creates_state(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("t", spin_body())
        reservation = scheduler.set_reservation(thread, 300, 10_000)
        assert reservation.proportion_ppt == 300
        assert scheduler.reservation(thread) is reservation

    def test_set_reservation_requires_registered_thread(self):
        scheduler = ReservationScheduler()
        thread = SimThread("orphan")
        with pytest.raises(SchedulerError):
            scheduler.set_reservation(thread, 100, 10_000)

    def test_update_preserves_period_window(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("t", spin_body())
        scheduler.set_reservation(thread, 100, 10_000)
        scheduler.reservation(thread).used_in_period_us = 500
        scheduler.set_reservation(thread, 200, 10_000)
        assert scheduler.reservation(thread).used_in_period_us == 500
        assert scheduler.reservation(thread).proportion_ppt == 200

    def test_changing_period_resets_window(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("t", spin_body())
        scheduler.set_reservation(thread, 100, 10_000)
        scheduler.reservation(thread).used_in_period_us = 500
        scheduler.set_reservation(thread, 100, 20_000)
        assert scheduler.reservation(thread).used_in_period_us == 0

    def test_clear_reservation_demotes_to_best_effort(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("t", spin_body())
        scheduler.set_reservation(thread, 100, 10_000)
        scheduler.clear_reservation(thread)
        assert scheduler.reservation(thread) is None
        assert thread.policy is SchedulingPolicy.BEST_EFFORT

    def test_total_reserved(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        a = kernel.spawn("a", spin_body())
        b = kernel.spawn("b", spin_body())
        scheduler.set_reservation(a, 100, 10_000)
        scheduler.set_reservation(b, 350, 10_000)
        assert scheduler.total_reserved_ppt() == 450

    def test_reservation_thread_without_proportion_starts_at_zero(self):
        kernel = make_kernel()
        thread = kernel.spawn("t", spin_body())
        reservation = kernel.scheduler.reservation(thread)
        assert reservation is not None
        assert reservation.proportion_ppt == 0


class TestProportionEnforcement:
    @pytest.mark.parametrize("proportion_ppt", [100, 250, 500])
    def test_thread_receives_roughly_its_proportion(self, proportion_ppt):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("limited", spin_body())
        idle_soak = kernel.spawn(
            "soak", spin_body(),
        )
        scheduler.set_reservation(thread, proportion_ppt, 10_000)
        scheduler.set_reservation(idle_soak, 1000 - proportion_ppt, 10_000)
        kernel.run_for(1_000_000)
        fraction = thread.accounting.total_us / kernel.now
        # Enforcement is at dispatch granularity, so allow one dispatch
        # interval of overrun per period (10%) plus slack.
        assert fraction == pytest.approx(proportion_ppt / 1000, abs=0.12)

    def test_unused_cpu_goes_idle_when_thread_is_throttled(self):
        kernel = make_kernel()
        thread = kernel.spawn("limited", spin_body())
        kernel.scheduler.set_reservation(thread, 200, 10_000)
        kernel.run_for(100_000)
        fraction = thread.accounting.total_us / kernel.now
        assert fraction < 0.35
        assert kernel.idle_us > 0

    def test_exact_enforcement_removes_overrun(self):
        kernel = Kernel(
            ReservationScheduler(enforce_within_slice=True),
            charge_dispatch_overhead=False,
            syscall_cost_us=0,
        )
        thread = kernel.spawn("limited", spin_body())
        kernel.scheduler.set_reservation(thread, 250, 10_000)
        kernel.run_for(1_000_000)
        fraction = thread.accounting.total_us / kernel.now
        assert fraction == pytest.approx(0.25, abs=0.01)

    def test_zero_proportion_thread_never_runs(self):
        kernel = make_kernel()
        thread = kernel.spawn("starved", spin_body())
        kernel.scheduler.set_reservation(thread, 0, 10_000)
        other = kernel.spawn("other", spin_body())
        kernel.scheduler.set_reservation(other, 500, 10_000)
        kernel.run_for(100_000)
        assert thread.accounting.total_us == 0


class TestRateMonotonicOrdering:
    def test_shorter_period_preferred_at_dispatch(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        long_thread = kernel.spawn("long", spin_body())
        short_thread = kernel.spawn("short", spin_body())
        scheduler.set_reservation(long_thread, 400, 100_000)
        scheduler.set_reservation(short_thread, 400, 10_000)
        picked = scheduler.pick_next(kernel.now)
        assert picked is short_thread

    def test_best_effort_runs_only_when_reservations_idle(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        reserved = kernel.spawn("reserved", spin_body())
        scheduler.set_reservation(reserved, 300, 10_000)
        best_effort = kernel.spawn(
            "be", spin_body(), policy=SchedulingPolicy.BEST_EFFORT
        )
        kernel.run_for(1_000_000)
        reserved_fraction = reserved.accounting.total_us / kernel.now
        best_effort_fraction = best_effort.accounting.total_us / kernel.now
        assert reserved_fraction == pytest.approx(0.3, abs=0.12)
        # Best effort mops up the rest of the machine.
        assert best_effort_fraction == pytest.approx(1 - reserved_fraction, abs=0.02)

    def test_two_reservations_both_met_when_feasible(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        a = kernel.spawn("a", spin_body())
        b = kernel.spawn("b", spin_body())
        scheduler.set_reservation(a, 300, 10_000)
        scheduler.set_reservation(b, 300, 30_000)
        kernel.run_for(1_000_000)
        assert a.accounting.total_us / kernel.now == pytest.approx(0.3, abs=0.12)
        assert b.accounting.total_us / kernel.now == pytest.approx(0.3, abs=0.12)

    def test_next_wakeup_reports_replenishment_time(self):
        kernel = make_kernel()
        scheduler = kernel.scheduler
        thread = kernel.spawn("t", spin_body())
        scheduler.set_reservation(thread, 100, 10_000)
        kernel.run_for(2_000)  # thread has consumed its 1 ms budget by now
        wakeup = scheduler.next_wakeup(kernel.now)
        assert wakeup is not None
        assert wakeup % 10_000 == 0

    def test_deadline_miss_counter_accumulates_under_demand(self):
        kernel = make_kernel()
        thread = kernel.spawn("greedy", spin_body())
        kernel.scheduler.set_reservation(thread, 100, 10_000)
        kernel.run_for(200_000)
        # The thread always wants more than 10% so every period records
        # unmet demand.
        assert kernel.scheduler.deadline_misses() >= 15

    def test_exited_thread_is_removed(self):
        kernel = make_kernel()
        thread = kernel.spawn("finite", finite_body(3_000))
        kernel.scheduler.set_reservation(thread, 500, 10_000)
        kernel.run_for(100_000)
        assert thread.state is ThreadState.EXITED
        assert thread not in kernel.scheduler.threads()
