"""Unit tests for the fault injector (hijacks, hotplug, sensors)."""

from __future__ import annotations

import pytest

from repro.faults import (
    CPU_FAIL,
    CPU_RECOVER,
    RUNAWAY_START,
    RUNAWAY_STOP,
    SENSOR_DROPOUT,
    STALL_START,
    FaultEvent,
    FaultInjectionError,
    FaultInjector,
    FaultPlan,
    FaultySensor,
)
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.registry import Role, SymbioticRegistry
from repro.monitor.progress import ProgressSampler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, Sleep
from repro.sim.thread import SimThread

from tests.conftest import spin_body


def make_kernel(**kwargs) -> Kernel:
    defaults = dict(charge_dispatch_overhead=False, syscall_cost_us=0)
    defaults.update(kwargs)
    return Kernel(RoundRobinScheduler(), **defaults)


def thinker_body(burst_us: int = 500, think_us: int = 2_000):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(think_us)

    return body


def install(kernel, *events, seed=0, allocator=None) -> FaultInjector:
    injector = FaultInjector(
        kernel, FaultPlan(events=tuple(events), seed=seed), allocator=allocator
    )
    injector.install()
    return injector


class TestHijacks:
    def test_runaway_burns_cpu_and_restores(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim", thinker_body(500, 2_000))
        injector = install(
            kernel,
            FaultEvent(20_000, RUNAWAY_START, thread="victim",
                       duration_us=20_000),
        )
        kernel.run_until(20_000)
        before = victim.accounting.total_us
        # Thinker duty cycle: 500/2500 = 20% of CPU.
        assert before <= 20_000 * 0.3
        kernel.run_until(40_000)
        runaway_share = victim.accounting.total_us - before
        # Runaway window: the sole thread burns (nearly) all of it.
        assert runaway_share >= 20_000 * 0.9
        assert injector.active_hijacks() == (victim.tid,)
        sleeps_at_restore = victim.accounting.sleeps
        kernel.run_until(60_000)
        # The stop event (due exactly at the checkpoint above) fired at
        # the top of the next loop iteration and restored the real body:
        # it thinks again.
        assert injector.active_hijacks() == ()
        assert victim.accounting.sleeps > sleeps_at_restore
        assert victim.accounting.total_us - before - runaway_share < 20_000 * 0.3
        assert injector.hits() == 2

    def test_stall_stops_consuming_cpu(self):
        kernel = make_kernel()
        victim = kernel.spawn("victim", spin_body(1_000))
        install(
            kernel,
            FaultEvent(10_000, STALL_START, thread="victim",
                       duration_us=30_000),
        )
        kernel.run_until(10_000)
        before = victim.accounting.total_us
        kernel.run_until(40_000)
        # A stalled spinner consumes (almost) nothing for the window.
        assert victim.accounting.total_us - before <= 1_000
        kernel.run_until(60_000)
        # Restored: it spins again.
        assert victim.accounting.total_us - before >= 15_000

    def test_pending_send_redelivered_after_restore(self):
        kernel = make_kernel()
        buf = BoundedBuffer("q", capacity_bytes=10)
        received = []

        def consumer(env):
            while True:
                value = yield Get(buf, 2)
                received.append(value)
                yield Compute(200)

        def producer(env):
            while True:
                yield Compute(9_000)
                yield Put(buf, 2)

        kernel.spawn("consumer", consumer)
        kernel.spawn("producer", producer)
        # Stall the consumer across the producer's first Put: the
        # payload is delivered mid-fault and must not be lost.
        install(
            kernel,
            FaultEvent(2_000, STALL_START, thread="consumer",
                       duration_us=20_000),
        )
        kernel.run_for(60_000)
        # The consumer missed nothing: every Put's payload arrived.
        assert received
        assert all(value == 2 for value in received)
        # Clean twin without the fault receives the same payloads
        # (possibly more of them, since it never sat out a window).
        twin = make_kernel()
        twin_received = []
        buf2 = BoundedBuffer("q2", capacity_bytes=10)

        def twin_consumer(env):
            while True:
                value = yield Get(buf2, 2)
                twin_received.append(value)
                yield Compute(200)

        def twin_producer(env):
            while True:
                yield Compute(9_000)
                yield Put(buf2, 2)

        twin.spawn("consumer", twin_consumer)
        twin.spawn("producer", twin_producer)
        twin.run_for(60_000)
        assert twin_received[: len(received)] == received

    def test_missing_thread_logged_not_raised(self):
        kernel = make_kernel()
        kernel.spawn("worker", spin_body())
        injector = install(
            kernel,
            FaultEvent(5_000, RUNAWAY_START, thread="ghost"),
            FaultEvent(6_000, RUNAWAY_STOP, thread="worker"),
        )
        kernel.run_for(10_000)
        assert injector.hits() == 0
        details = [(r.kind, r.hit) for r in injector.log]
        assert (RUNAWAY_START, False) in details  # no such thread
        assert (RUNAWAY_STOP, False) in details  # never hijacked

    def test_double_hijack_is_a_miss(self):
        kernel = make_kernel()
        kernel.spawn("victim", spin_body())
        injector = install(
            kernel,
            FaultEvent(1_000, RUNAWAY_START, thread="victim"),
            FaultEvent(2_000, STALL_START, thread="victim"),
        )
        kernel.run_for(5_000)
        assert [r.hit for r in injector.log] == [True, False]
        assert len(injector.active_hijacks()) == 1


class TestCpuFaults:
    def test_fail_and_recover_through_plan(self):
        kernel = make_kernel(n_cpus=2)
        kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        injector = install(
            kernel,
            FaultEvent(10_000, CPU_FAIL, cpu=1, duration_us=20_000),
        )
        kernel.run_until(15_000)
        assert kernel.online_cpu_count == 1
        kernel.run_until(40_000)
        assert kernel.online_cpu_count == 2
        assert injector.hits() == 2

    def test_redundant_cpu_events_are_misses(self):
        kernel = make_kernel(n_cpus=2)
        kernel.spawn("a", spin_body())
        injector = install(
            kernel,
            FaultEvent(1_000, CPU_FAIL, cpu=1),
            FaultEvent(2_000, CPU_FAIL, cpu=1),       # already offline
            FaultEvent(3_000, CPU_RECOVER, cpu=1),
            FaultEvent(4_000, CPU_RECOVER, cpu=1),    # already online
        )
        kernel.run_for(6_000)
        assert [r.hit for r in injector.log] == [True, False, True, False]


class TestInstallRules:
    def test_double_install_rejected(self):
        kernel = make_kernel()
        injector = FaultInjector(kernel, FaultPlan())
        injector.install()
        with pytest.raises(FaultInjectionError, match="already installed"):
            injector.install()

    def test_sensor_fault_needs_allocator(self):
        kernel = make_kernel()
        injector = FaultInjector(
            kernel,
            FaultPlan(
                events=(
                    FaultEvent(0, SENSOR_DROPOUT, thread="w",
                               duration_us=1_000),
                )
            ),
        )
        with pytest.raises(FaultInjectionError, match="needs an allocator"):
            injector.install()


class TestFaultySensor:
    def _sampler(self):
        registry = SymbioticRegistry()
        thread = SimThread("consumer", spin_body())
        channel = BoundedBuffer("q", capacity_bytes=100)
        channel.commit_put(75, now=0, thread=None)
        registry.register(thread, channel, Role.CONSUMER)
        return ProgressSampler(thread, registry)

    def test_dropout_returns_none(self):
        import random

        inner = self._sampler()
        assert inner.sample() is not None
        faulty = FaultySensor(inner, "dropout", random.Random(1))
        assert faulty.sample() is None
        assert faulty.linkages() == inner.linkages()

    def test_corrupt_adds_seeded_bounded_noise(self):
        import random

        inner = self._sampler()
        truth = inner.sample().raw
        noisy_a = [
            FaultySensor(inner, "corrupt", random.Random(7), magnitude=0.5)
            .sample().raw
            for _ in range(1)
        ]
        noisy_b = FaultySensor(
            inner, "corrupt", random.Random(7), magnitude=0.5
        ).sample()
        # Same seed -> identical corruption (determinism).
        assert noisy_a[0] == noisy_b.raw
        assert abs(noisy_b.raw - truth) <= 0.5
        # Per-channel truth is preserved for traces.
        assert noisy_b.per_channel == inner.sample().per_channel

    def test_unknown_mode_rejected(self):
        import random

        with pytest.raises(FaultInjectionError, match="unknown sensor"):
            FaultySensor(self._sampler(), "gaslight", random.Random(0))
