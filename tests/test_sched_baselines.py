"""Unit tests for the baseline schedulers (goodness, priority, lottery, RR)."""

import pytest

from repro.sched.goodness import LinuxGoodnessScheduler
from repro.sched.lottery import LotteryScheduler
from repro.sched.priority import FixedPriorityScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import SchedulerError
from repro.sim.kernel import Kernel
from repro.sim.requests import AcquireMutex, Compute, ReleaseMutex, Sleep
from repro.ipc.mutex import Mutex

from tests.conftest import spin_body


def make_kernel(scheduler, **kwargs) -> Kernel:
    defaults = dict(charge_dispatch_overhead=False, syscall_cost_us=0)
    defaults.update(kwargs)
    return Kernel(scheduler, **defaults)


class TestRoundRobin:
    def test_equal_sharing(self):
        kernel = make_kernel(RoundRobinScheduler())
        threads = [kernel.spawn(f"t{i}", spin_body()) for i in range(4)]
        kernel.run_for(400_000)
        shares = [t.accounting.total_us / kernel.now for t in threads]
        for share in shares:
            assert share == pytest.approx(0.25, abs=0.02)

    def test_idle_with_no_threads(self):
        kernel = make_kernel(RoundRobinScheduler())
        kernel.run_for(10_000)
        assert kernel.idle_us == 10_000

    def test_custom_slice(self):
        scheduler = RoundRobinScheduler(slice_us=5_000)
        kernel = make_kernel(scheduler)
        thread = kernel.spawn("t", spin_body())
        assert scheduler.time_slice(thread, 0) == 5_000


class TestFixedPriority:
    def test_highest_priority_monopolises_cpu(self):
        kernel = make_kernel(FixedPriorityScheduler())
        low = kernel.spawn("low", spin_body(), priority=1)
        high = kernel.spawn("high", spin_body(), priority=10)
        kernel.run_for(100_000)
        assert high.accounting.total_us == 100_000
        assert low.accounting.total_us == 0

    def test_equal_priorities_share(self):
        kernel = make_kernel(FixedPriorityScheduler())
        a = kernel.spawn("a", spin_body(), priority=5)
        b = kernel.spawn("b", spin_body(), priority=5)
        kernel.run_for(100_000)
        assert abs(a.accounting.total_us - b.accounting.total_us) <= 2_000

    def test_lower_priority_runs_when_high_sleeps(self):
        def sleepy(env):
            while True:
                yield Compute(1_000)
                yield Sleep(9_000)

        kernel = make_kernel(FixedPriorityScheduler())
        high = kernel.spawn("high", sleepy, priority=10)
        low = kernel.spawn("low", spin_body(), priority=1)
        kernel.run_for(100_000)
        assert high.accounting.total_us == pytest.approx(10_000, abs=2_000)
        assert low.accounting.total_us == pytest.approx(90_000, abs=2_000)

    def test_priority_inheritance_boosts_mutex_owner(self):
        mutex = Mutex("m")
        scheduler = FixedPriorityScheduler(priority_inheritance=True)
        kernel = make_kernel(scheduler)

        def low_body(env):
            yield AcquireMutex(mutex)
            yield Compute(20_000)
            yield ReleaseMutex(mutex)
            while True:
                yield Compute(1_000)

        def high_body(env):
            yield Sleep(1_000)
            yield AcquireMutex(mutex)
            yield Compute(100)
            yield ReleaseMutex(mutex)

        low = kernel.spawn("low", low_body, priority=1)
        kernel.spawn("medium", spin_body(), priority=5)
        high = kernel.spawn("high", high_body, priority=10)
        kernel.run_for(100_000)
        # With inheritance the low thread is boosted while the high
        # thread waits, so the high thread completes its critical
        # section well before the end of the run.
        assert high.accounting.total_us >= 100
        assert low.priority == 1  # priority restored after release

    def test_without_inheritance_high_thread_starves(self):
        mutex = Mutex("m")
        kernel = make_kernel(FixedPriorityScheduler(priority_inheritance=False))

        def low_body(env):
            yield AcquireMutex(mutex)
            yield Compute(20_000)
            yield ReleaseMutex(mutex)

        def high_body(env):
            yield Sleep(1_000)
            yield AcquireMutex(mutex)
            yield Compute(100)
            yield ReleaseMutex(mutex)

        kernel.spawn("low", low_body, priority=1)
        kernel.spawn("medium", spin_body(), priority=5)
        high = kernel.spawn("high", high_body, priority=10)
        kernel.run_for(100_000)
        # The medium hog starves the low thread, which never releases
        # the mutex, so the high thread never finishes its critical work.
        assert high.accounting.total_us < 100 + 1_000


class TestGoodnessScheduler:
    def test_equal_nice_threads_share(self):
        kernel = make_kernel(LinuxGoodnessScheduler())
        a = kernel.spawn("a", spin_body(), nice=0)
        b = kernel.spawn("b", spin_body(), nice=0)
        kernel.run_for(1_000_000)
        share_a = a.accounting.total_us / kernel.now
        assert share_a == pytest.approx(0.5, abs=0.05)

    def test_nicer_thread_gets_less_cpu(self):
        kernel = make_kernel(LinuxGoodnessScheduler())
        greedy = kernel.spawn("greedy", spin_body(), nice=-10)
        nice = kernel.spawn("nice", spin_body(), nice=10)
        kernel.run_for(2_000_000)
        assert greedy.accounting.total_us > nice.accounting.total_us

    def test_recharge_happens_when_counters_exhaust(self):
        scheduler = LinuxGoodnessScheduler(base_quantum_us=10_000)
        kernel = make_kernel(scheduler)
        kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        kernel.run_for(200_000)
        assert scheduler.recharges >= 1

    def test_goodness_zero_when_counter_exhausted(self):
        scheduler = LinuxGoodnessScheduler(base_quantum_us=5_000)
        kernel = make_kernel(scheduler)
        thread = kernel.spawn("t", spin_body())
        scheduler.charge(thread, 5_000, 5_000)
        assert scheduler.goodness(thread) == 0

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError):
            LinuxGoodnessScheduler(base_quantum_us=0)


class TestLotteryScheduler:
    def test_shares_proportional_to_tickets(self):
        kernel = make_kernel(LotteryScheduler(seed=7))
        rich = kernel.spawn("rich", spin_body(), tickets=300)
        poor = kernel.spawn("poor", spin_body(), tickets=100)
        kernel.run_for(2_000_000)
        total = rich.accounting.total_us + poor.accounting.total_us
        assert rich.accounting.total_us / total == pytest.approx(0.75, abs=0.08)

    def test_deterministic_given_seed(self):
        def run(seed):
            kernel = make_kernel(LotteryScheduler(seed=seed))
            a = kernel.spawn("a", spin_body(), tickets=100)
            b = kernel.spawn("b", spin_body(), tickets=100)
            kernel.run_for(100_000)
            return a.accounting.total_us, b.accounting.total_us

        assert run(3) == run(3)

    def test_set_tickets_validates(self):
        scheduler = LotteryScheduler()
        kernel = make_kernel(scheduler)
        thread = kernel.spawn("t", spin_body())
        with pytest.raises(SchedulerError):
            scheduler.set_tickets(thread, 0)
        scheduler.set_tickets(thread, 42)
        assert thread.tickets == 42

    def test_no_runnable_threads_returns_none(self):
        scheduler = LotteryScheduler()
        make_kernel(scheduler)
        assert scheduler.pick_next(0) is None
