"""Epoch-contract conformance: every mutation path reaches a bump."""


class GoodScheduler:
    PICK_RELEVANT_STATE = frozenset({"_queue", "_weights", "_cursor"})

    EPOCH_EXEMPT = {
        "note_batched_picks": "pick-time cursor replay; engine replays it",
    }

    def __init__(self) -> None:
        self.state_epoch = 0
        self._queue: list[int] = []
        self._weights: dict[int, int] = {}
        self._cursor = 0

    def _bump_epoch(self) -> None:
        self.state_epoch += 1

    def enqueue(self, tid: int) -> None:
        self._queue.append(tid)
        self.state_epoch += 1

    def set_weight(self, tid: int, weight: int) -> None:
        self._weights[tid] = weight
        self._bump_epoch()

    def remove(self, tid: int) -> None:
        # bump reached transitively through set_weight
        self._queue.remove(tid)
        self.set_weight(tid, 0)

    def note_batched_picks(self, picks: list[int]) -> None:
        self._cursor += len(picks)

    def peek(self) -> int:
        # read-only access is never a mutation
        return self._queue[0] if self._queue else -1


class InheritingScheduler(GoodScheduler):
    def enqueue_twice(self, tid: int) -> None:
        # bump inherited through the superclass method
        self.enqueue(tid)
        self.enqueue(tid)
