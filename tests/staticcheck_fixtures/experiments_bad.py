"""Experiment-registry violations: missing knobs, no fingerprint."""

from repro.experiments.registry import Param, experiment


@experiment(
    name="fixture_bad",
    description="missing engine/seed and never fingerprints",
    params=(
        Param("sim_seconds", kind="float", default=1.0),
    ),
)
def fixture_bad_experiment(*, sim_seconds: float = 1.0):
    # BAD: no engine/seed params, and no dispatch_fingerprint stamp
    return {"sim_seconds": sim_seconds}
