"""Wire-format violations: write-only and unversioned payloads."""

RECORD_SCHEMA_VERSION = 1


class WriteOnlyRecord:
    def __init__(self, value: int) -> None:
        self.value = value

    # BAD: to_dict with no from_dict
    def to_dict(self) -> dict:
        return {"schema_version": RECORD_SCHEMA_VERSION, "value": self.value}
