"""Fixture: every way of writing a file without the atomic helper."""

import io
import json
import os
from pathlib import Path


def truncating_write(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def keyword_mode_write(path, text):
    with open(path, mode="a", encoding="utf-8") as handle:
        handle.write(text)


def exclusive_write(path, text):
    with open(path, "x") as handle:
        handle.write(text)


def update_write(path, text):
    with open(path, "r+") as handle:
        handle.write(text)


def fd_write(fd, text):
    with os.fdopen(fd, "w") as handle:
        handle.write(text)


def io_write(path, text):
    with io.open(path, "wt") as handle:
        handle.write(text)


def pathlib_write(path, text):
    Path(path).write_text(text, encoding="utf-8")
