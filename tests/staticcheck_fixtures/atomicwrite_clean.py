"""Fixture: file access the atomic-write checker must leave alone."""

import json


def plain_read(path):
    with open(path) as handle:
        return json.load(handle)


def explicit_read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def binary_read(path):
    with open(path, "rb") as handle:
        return handle.read()


def dynamic_mode(path, mode):
    # Non-constant modes get the benefit of the doubt (flow-free pass).
    with open(path, mode) as handle:
        return handle.read()


def through_the_helper(path, payload):
    from repro.core.artifacts import write_atomic

    write_atomic(path, json.dumps(payload, sort_keys=True) + "\n")


def durable_append(path, record):
    from repro.core.artifacts import append_durable

    append_durable(path, json.dumps(record, sort_keys=True))


def pathlib_read(path):
    from pathlib import Path

    return Path(path).read_text(encoding="utf-8")
