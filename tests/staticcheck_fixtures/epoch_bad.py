"""Epoch-contract violations: registered state mutated without a bump."""

import heapq


class BrokenScheduler:
    PICK_RELEVANT_STATE = frozenset({"_queue", "_weights"})

    def __init__(self) -> None:
        self.state_epoch = 0
        self._queue: list[int] = []
        self._weights: dict[int, int] = {}

    def enqueue(self, tid: int) -> None:
        # BAD: mutates registered state, never bumps state_epoch
        self._queue.append(tid)

    def set_weight(self, tid: int, weight: int) -> None:
        # BAD: subscript store on registered state without a bump
        self._weights[tid] = weight

    def drop_weight(self, tid: int) -> None:
        # BAD: del on registered state without a bump
        del self._weights[tid]

    def requeue(self, tid: int) -> None:
        # BAD: heapq mutates the registered heap passed by position
        heapq.heappush(self._queue, tid)


class MalformedScheduler:
    # BAD: registry must be a literal frozenset of strings
    PICK_RELEVANT_STATE = frozenset(name for name in ("_queue",))

    def __init__(self) -> None:
        self.state_epoch = 0
        self._queue: list[int] = []
