"""Suppression grammar cases: justified, unjustified, and unused."""

import time


def diagnostics_only() -> float:
    # repro-lint: disable=determinism -- wall timing feeds a log line, never a charged cost
    return time.time()


def unjustified() -> float:
    # repro-lint: disable=determinism
    return time.time()


def dead_waiver() -> int:
    # repro-lint: disable=determinism -- nothing here actually trips the checker
    return 42
