# float-order: exact
"""Float-order violations inside an annotated module."""

import math


def total(values: list[float]) -> float:
    # BAD: sum() in a float-order: exact module
    return sum(values)


def compensated(values: list[float]) -> float:
    # BAD: fsum compensates, changing the low bits
    return math.fsum(values)


def accumulate(state: float, a: float, b: float) -> float:
    # BAD: reassociated accumulation
    state += a + b
    return state
