"""Same code as floatorder_bad, but the module never opted in —
the float-order checker must not flag anything here."""

import math


def total(values: list[float]) -> float:
    return sum(values)


def compensated(values: list[float]) -> float:
    return math.fsum(values)


def accumulate(state: float, a: float, b: float) -> float:
    state += a + b
    return state
