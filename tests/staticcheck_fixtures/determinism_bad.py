"""Determinism violations: ambient time, entropy, and hash-order leaks."""

import random
import time


class NoisyComponent:
    def __init__(self) -> None:
        self._members: set[int] = set()
        # BAD: unseeded Random draws from OS entropy
        self._rng = random.Random()

    def stamp(self) -> float:
        # BAD: wall-clock read
        return time.time()

    def jitter(self) -> float:
        # BAD: shared global RNG
        return random.uniform(0.0, 1.0)

    def drain(self) -> list[int]:
        out = []
        # BAD: set iterated in hash order
        for member in self._members:
            out.append(member)
        return out

    def ordered(self) -> list[int]:
        # GOOD: sorted() makes the order explicit
        return sorted(self._members)

    def rank(self, items: list[object]) -> list[object]:
        # BAD: id() in a sort key orders by address
        return sorted(items, key=lambda item: id(item))
