"""Wire-format violation: round-trips, but no schema version at all."""


class UnversionedRecord:
    def __init__(self, value: int) -> None:
        self.value = value

    # BAD: no *_SCHEMA_VERSION constant covers this module
    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload: dict) -> "UnversionedRecord":
        return cls(value=payload["value"])
