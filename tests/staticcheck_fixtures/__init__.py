"""Seeded-violation corpus for the ``repro lint`` checkers.

Each ``*_bad.py`` module contains deliberate contract violations the
matching checker must flag; ``*_good.py``/``*_clean.py`` modules are
near-identical code the checker must accept.  These files are scanned
as data by the tests (never imported), so they may reference modules
that do not exist.
"""
