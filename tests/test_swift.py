"""Unit tests for the SWiFT feedback toolkit."""

import math

import pytest

from repro.swift.circuit import Circuit
from repro.swift.components import (
    Clamp,
    DeadBand,
    Differentiator,
    Gain,
    Integrator,
    LowPassFilter,
    MovingAverage,
    SummingJunction,
)
from repro.swift.pid import PIDController, PIDGains


class TestComponents:
    def test_gain(self):
        assert Gain(2.5).step(4.0, 0.01) == 10.0

    def test_summing_junction_plain(self):
        assert SummingJunction().combine([1.0, 2.0, -0.5]) == 2.5

    def test_summing_junction_signed(self):
        junction = SummingJunction(signs=[1, -1])
        assert junction.combine([3.0, 1.0]) == 2.0

    def test_summing_junction_sign_mismatch(self):
        with pytest.raises(ValueError):
            SummingJunction(signs=[1]).combine([1.0, 2.0])

    def test_integrator_accumulates(self):
        integrator = Integrator()
        integrator.step(1.0, 0.5)
        assert integrator.step(1.0, 0.5) == pytest.approx(1.0)

    def test_integrator_clamps(self):
        integrator = Integrator(limit_low=-1.0, limit_high=1.0)
        for _ in range(100):
            integrator.step(10.0, 0.1)
        assert integrator.value == 1.0
        for _ in range(300):
            integrator.step(-10.0, 0.1)
        assert integrator.value == -1.0

    def test_integrator_reset(self):
        integrator = Integrator(initial=2.0)
        integrator.step(1.0, 1.0)
        integrator.reset()
        assert integrator.value == 2.0

    def test_differentiator_first_sample_is_zero(self):
        assert Differentiator().step(5.0, 0.1) == 0.0

    def test_differentiator_computes_slope(self):
        diff = Differentiator()
        diff.step(1.0, 0.1)
        assert diff.step(2.0, 0.1) == pytest.approx(10.0)

    def test_differentiator_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            Differentiator().step(1.0, 0.0)

    def test_low_pass_first_sample_passes_through(self):
        lpf = LowPassFilter(0.1)
        assert lpf.step(5.0, 0.01) == 5.0

    def test_low_pass_converges_to_constant_input(self):
        lpf = LowPassFilter(0.05)
        value = 0.0
        for _ in range(200):
            value = lpf.step(1.0, 0.01)
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_low_pass_attenuates_step_initially(self):
        lpf = LowPassFilter(time_constant_s=1.0)
        lpf.step(0.0, 0.01)
        assert lpf.step(1.0, 0.01) < 0.05

    def test_low_pass_invalid_time_constant(self):
        with pytest.raises(ValueError):
            LowPassFilter(0.0)

    def test_moving_average(self):
        avg = MovingAverage(3)
        assert avg.step(3.0, 0) == 3.0
        assert avg.step(6.0, 0) == 4.5
        assert avg.step(9.0, 0) == 6.0
        assert avg.step(12.0, 0) == 9.0  # window slides

    def test_moving_average_invalid_window(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_clamp(self):
        clamp = Clamp(-1.0, 1.0)
        assert clamp.step(5.0, 0) == 1.0
        assert clamp.step(-5.0, 0) == -1.0
        assert clamp.step(0.25, 0) == 0.25

    def test_clamp_invalid_range(self):
        with pytest.raises(ValueError):
            Clamp(1.0, -1.0)

    def test_dead_band(self):
        band = DeadBand(0.1)
        assert band.step(0.05, 0) == 0.0
        assert band.step(-0.05, 0) == 0.0
        assert band.step(0.2, 0) == 0.2


class TestPIDGains:
    def test_defaults_non_negative(self):
        gains = PIDGains()
        assert gains.kp >= 0 and gains.ki >= 0 and gains.kd >= 0

    def test_negative_gain_rejected(self):
        with pytest.raises(ValueError):
            PIDGains(kp=-1)


class TestPIDController:
    def test_proportional_only(self):
        pid = PIDController(PIDGains(kp=2.0, ki=0.0, kd=0.0))
        assert pid.step(0.5, 0.01) == pytest.approx(1.0)

    def test_integral_accumulates_error(self):
        pid = PIDController(PIDGains(kp=0.0, ki=1.0, kd=0.0))
        out = 0.0
        for _ in range(100):
            out = pid.step(1.0, 0.01)
        assert out == pytest.approx(1.0, rel=1e-6)

    def test_integral_persists_when_error_returns_to_zero(self):
        pid = PIDController(PIDGains(kp=1.0, ki=1.0, kd=0.0))
        for _ in range(100):
            pid.step(1.0, 0.01)
        settled = pid.step(0.0, 0.01)
        assert settled == pytest.approx(1.0, rel=1e-6)

    def test_output_saturation(self):
        pid = PIDController(
            PIDGains(kp=10.0, ki=0.0, kd=0.0), output_low=0.0, output_high=1.0
        )
        assert pid.step(5.0, 0.01) == 1.0
        assert pid.step(-5.0, 0.01) == 0.0

    def test_anti_windup_limits_integral(self):
        pid = PIDController(
            PIDGains(kp=0.0, ki=1.0, kd=0.0), output_low=0.0, output_high=1.0
        )
        for _ in range(10_000):
            pid.step(1.0, 0.01)
        # After the error flips sign the output must recover quickly
        # because the integral was clamped at the output bound.
        recovery_steps = 0
        while pid.step(-1.0, 0.01) > 0.5 and recovery_steps < 1_000:
            recovery_steps += 1
        assert recovery_steps < 100

    def test_derivative_responds_to_change(self):
        pid = PIDController(
            PIDGains(kp=0.0, ki=0.0, kd=1.0), derivative_filter_s=None
        )
        pid.step(0.0, 0.01)
        assert pid.step(1.0, 0.01) == pytest.approx(100.0)

    def test_preload_integral(self):
        pid = PIDController(PIDGains(kp=0.0, ki=2.0, kd=0.0))
        pid.preload_integral(0.5)
        assert pid.step(0.0, 0.01) == pytest.approx(1.0)

    def test_reset_clears_state(self):
        pid = PIDController()
        pid.step(1.0, 0.01)
        pid.reset()
        assert pid.steps == 0
        assert pid.integral_value == 0.0

    def test_invalid_dt_rejected(self):
        with pytest.raises(ValueError):
            PIDController().step(1.0, 0.0)

    def test_closed_loop_first_order_plant_converges(self):
        """PID around a simple integrating plant reaches the set point."""
        pid = PIDController(PIDGains(kp=2.0, ki=4.0, kd=0.0))
        dt = 0.01
        state = 0.0
        setpoint = 1.0
        for _ in range(2_000):
            control = pid.step(setpoint - state, dt)
            state += control * dt
        assert state == pytest.approx(setpoint, abs=0.01)


class TestCircuit:
    def test_linear_chain_evaluation(self):
        circuit = Circuit()
        circuit.add("in", Gain(1.0)).add("x2", Gain(2.0)).add("x3", Gain(3.0))
        circuit.chain("in", "x2", "x3")
        outputs = circuit.step({"in": 2.0}, dt=0.01)
        assert outputs == {"x3": 12.0}

    def test_inputs_and_outputs_identified(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0)).add("b", Gain(1.0)).connect("a", "b")
        assert circuit.inputs() == ["a"]
        assert circuit.outputs() == ["b"]

    def test_missing_input_raises(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0))
        with pytest.raises(ValueError):
            circuit.step({}, dt=0.01)

    def test_duplicate_name_rejected(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0))
        with pytest.raises(ValueError):
            circuit.add("a", Gain(2.0))

    def test_two_incoming_wires_rejected(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0)).add("b", Gain(1.0)).add("c", Gain(1.0))
        circuit.connect("a", "c")
        with pytest.raises(ValueError):
            circuit.connect("b", "c")

    def test_cycle_detected(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0)).add("b", Gain(1.0))
        circuit.connect("a", "b")
        circuit.connect("b", "a")
        with pytest.raises(ValueError):
            circuit.step({"a": 1.0}, dt=0.01)

    def test_unknown_component_in_connect(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0))
        with pytest.raises(ValueError):
            circuit.connect("a", "missing")

    def test_stateful_components_persist_between_steps(self):
        circuit = Circuit()
        circuit.add("err", Gain(1.0)).add("int", Integrator())
        circuit.connect("err", "int")
        circuit.step({"err": 1.0}, dt=0.5)
        outputs = circuit.step({"err": 1.0}, dt=0.5)
        assert outputs["int"] == pytest.approx(1.0)

    def test_reset_resets_components(self):
        circuit = Circuit()
        circuit.add("int", Integrator())
        circuit.step({"int": 1.0}, dt=1.0)
        circuit.reset()
        assert circuit.step({"int": 0.0}, dt=1.0)["int"] == 0.0

    def test_len_and_contains(self):
        circuit = Circuit()
        circuit.add("a", Gain(1.0))
        assert len(circuit) == 1
        assert "a" in circuit
        assert "b" not in circuit


class TestPIDInlineConsistency:
    def test_step_matches_explicit_component_composition(self):
        """PIDController.step inlines the component arithmetic for the
        controller hot path; this pins the fast path to the component
        classes so the two implementations cannot drift apart."""
        gains = PIDGains(kp=0.3, ki=0.7, kd=0.01)
        pid = PIDController(gains, output_low=0.0, output_high=2.0)
        integrator = Integrator(limit_low=0.0, limit_high=2.0 / gains.ki)
        differentiator = Differentiator()
        lpf = LowPassFilter(0.05)  # PIDController's default filter
        dt = 0.01
        for error in (0.5, -0.2, 1.3, 0.0, 0.8, -1.0, 0.4, 3.5, -3.5):
            expected = gains.kp * error + gains.ki * integrator.step(error, dt)
            expected += gains.kd * lpf.step(differentiator.step(error, dt), dt)
            expected = min(2.0, max(0.0, expected))
            assert pid.step(error, dt) == expected
        assert pid.integral_value == integrator.value
