"""The ``python -m repro lint`` surface: exit codes, flags, integration.

The acceptance gates live here: the shipped tree lints clean (exit 0),
every seeded fixture violation fails the gate (exit 1), and usage
errors exit 2 so CI can distinguish "dirty tree" from "broken
invocation".
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.staticcheck.cli import main as lint_main

FIXTURES = Path(__file__).parent / "staticcheck_fixtures"

BAD_FIXTURES = (
    "epoch_bad.py",
    "determinism_bad.py",
    "floatorder_bad.py",
    "wire_bad.py",
    "wire_unversioned.py",
    "experiments_bad.py",
    "suppress_mixed.py",
)


def test_shipped_tree_lints_clean():
    assert lint_main([]) == 0


def test_lint_subcommand_wired_into_repro_cli():
    assert repro_main(["lint"]) == 0


@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_each_seeded_violation_fails_the_gate(fixture):
    assert lint_main([str(FIXTURES / fixture), "--no-baseline"]) == 1


def test_unknown_check_is_usage_error(capsys):
    assert lint_main(["--check", "no-such-check"]) == 2
    assert "unknown check" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert lint_main(["/no/such/tree"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_checks_names_all_five(capsys):
    assert lint_main(["--list-checks"]) == 0
    out = capsys.readouterr().out
    for name in (
        "epoch-contract",
        "determinism",
        "float-order",
        "wire-format",
        "experiment-registry",
    ):
        assert name in out


def test_check_filter_runs_only_named_checker():
    # floatorder_bad trips float-order but not determinism
    target = str(FIXTURES / "floatorder_bad.py")
    assert lint_main([target, "--no-baseline", "--check", "determinism"]) == 0
    assert lint_main([target, "--no-baseline", "--check", "float-order"]) == 1


def test_json_report_to_stdout(capsys):
    code = lint_main(
        [str(FIXTURES / "determinism_bad.py"), "--no-baseline", "--json"]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["schema_version"] == 1
    assert report["counts"]["determinism"] >= 4
    paths = {f["path"] for f in report["findings"]}
    assert paths == {"tests/staticcheck_fixtures/determinism_bad.py"}


def test_json_report_to_file(tmp_path):
    out = tmp_path / "report.json"
    code = lint_main(
        [
            str(FIXTURES / "floatorder_bad.py"),
            "--no-baseline",
            "--json",
            str(out),
        ]
    )
    assert code == 1
    report = json.loads(out.read_text())
    assert report["counts"] == {"float-order": 3}


def test_write_baseline_then_clean(tmp_path):
    baseline = tmp_path / "baseline.json"
    target = str(FIXTURES / "determinism_bad.py")
    assert lint_main(
        [target, "--baseline", str(baseline), "--write-baseline"]
    ) == 0
    assert baseline.exists()
    assert lint_main([target, "--baseline", str(baseline)]) == 0
    # the waiver never hides *new* findings: without it the gate fails
    assert lint_main([target, "--no-baseline"]) == 1
