"""Integration tests for the workload library running on the full system."""

import pytest

from repro.core.config import ControllerConfig
from repro.sched.priority import FixedPriorityScheduler
from repro.sim.clock import seconds
from repro.sim.kernel import Kernel
from repro.sim.thread import ThreadState
from repro.system import build_real_rate_system
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.interactive import InteractiveJob
from repro.workloads.inversion import InversionScenario
from repro.workloads.io_intensive import IoIntensiveJob
from repro.workloads.modem import SoftwareModem
from repro.workloads.pipeline import MultimediaPipeline, PipelineStageSpec
from repro.workloads.pulse import (
    PulseParameters,
    PulsePipeline,
    PulseSchedule,
    RateSegment,
)
from repro.workloads.webserver import WebServer


def quiet_system(**kwargs):
    return build_real_rate_system(
        charge_dispatch_overhead=False, charge_controller_overhead=False, **kwargs
    )


class TestPulseSchedule:
    def test_default_rate_outside_segments(self):
        schedule = PulseSchedule([], default_rate=0.02)
        assert schedule.rate_at(0) == 0.02
        assert schedule.rate_at(10_000_000) == 0.02

    def test_segment_rate_applies_inside_window(self):
        schedule = PulseSchedule(
            [RateSegment(1_000_000, 2_000_000, 0.04)], default_rate=0.02
        )
        assert schedule.rate_at(999_999) == 0.02
        assert schedule.rate_at(1_000_000) == 0.04
        assert schedule.rate_at(1_999_999) == 0.04
        assert schedule.rate_at(2_000_000) == 0.02

    def test_invalid_segment(self):
        with pytest.raises(ValueError):
            RateSegment(100, 100, 0.01)
        with pytest.raises(ValueError):
            RateSegment(0, 100, 0.0)

    def test_paper_schedule_structure(self):
        schedule = PulseSchedule.paper_figure6(0.01)
        windows = schedule.pulse_windows
        assert len(windows) == 6
        rising = [w for w in windows if w[2]]
        falling = [w for w in windows if not w[2]]
        assert len(rising) == 3 and len(falling) == 3
        # Rising pulses double the rate; falling pulses dip back down.
        for start, end, _ in rising:
            assert schedule.rate_at((start + end) // 2) == pytest.approx(0.02)
        for start, end, _ in falling:
            assert schedule.rate_at((start + end) // 2) == pytest.approx(0.01)
        # The tail after the rising pulses runs at the high baseline.
        tail = schedule.high_baseline_start_us
        assert schedule.rate_at(tail + 1_000) == pytest.approx(0.02)

    def test_end_us(self):
        schedule = PulseSchedule.paper_figure6(0.01)
        assert schedule.end_us() > 20_000_000


class TestPulsePipeline:
    def test_steady_state_convergence(self):
        system = quiet_system()
        schedule = PulseSchedule([], default_rate=0.01)
        pipeline = PulsePipeline.attach(system, schedule=schedule)
        system.run_for(seconds(4))
        # The queue settles near the half-full set point…
        assert pipeline.fill_level() == pytest.approx(0.5, abs=0.15)
        # …and the consumer's allocation is near what matching the
        # producer requires (within the dispatch-quantisation overrun).
        expected = pipeline.expected_consumer_fraction(0.01)
        granted = system.allocator.current_allocation_ppt(pipeline.consumer) / 1000
        assert granted == pytest.approx(expected, abs=0.15)

    def test_consumer_progress_matches_producer(self):
        system = quiet_system()
        schedule = PulseSchedule([], default_rate=0.01)
        pipeline = PulsePipeline.attach(system, schedule=schedule)
        system.run_for(seconds(4))
        put = pipeline.queue.total_put_bytes
        got = pipeline.queue.total_get_bytes
        assert got == pytest.approx(put, rel=0.2)

    def test_producer_byte_rate_helper(self):
        system = quiet_system()
        pipeline = PulsePipeline.attach(
            system, schedule=PulseSchedule([], default_rate=0.01)
        )
        assert pipeline.producer_byte_rate(0.01) == pytest.approx(2_500.0)

    def test_producer_is_real_time_consumer_is_real_rate(self):
        system = quiet_system()
        pipeline = PulsePipeline.attach(
            system, schedule=PulseSchedule([], default_rate=0.01)
        )
        system.run_for(seconds(1))
        decisions = {d.thread.name: d for d in system.driver.last_decisions}
        assert decisions["pulse.producer"].thread_class.name == "REAL_TIME"
        assert decisions["pulse.consumer"].thread_class.name == "REAL_RATE"


class TestCpuHog:
    def test_hog_uses_spare_cpu(self):
        system = quiet_system()
        hog = CpuHog.attach(system)
        system.run_for(seconds(2))
        assert hog.cpu_seconds() > 1.0  # most of the idle machine

    def test_hog_classified_miscellaneous(self):
        system = quiet_system()
        CpuHog.attach(system)
        system.run_for(seconds(1))
        decision = system.driver.last_decisions[0]
        assert decision.thread_class.name == "MISCELLANEOUS"

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            CpuHog(burst_us=0)


class TestMultimediaPipeline:
    def test_decoder_gets_largest_cpu_share(self):
        system = quiet_system()
        pipeline = MultimediaPipeline.attach(system)
        system.run_for(seconds(5))
        shares = pipeline.cpu_shares()
        decoder = pipeline.decoder_thread()
        # The decoder dominates every other stage's CPU consumption even
        # though nothing declared its requirements.
        for name, share in shares.items():
            if name != decoder.name:
                assert shares[decoder.name] > share

    def test_frames_flow_through_pipeline(self):
        system = quiet_system()
        pipeline = MultimediaPipeline.attach(system)
        system.run_for(seconds(5))
        assert pipeline.frames_delivered > 50

    def test_queue_fill_levels_bounded(self):
        system = quiet_system()
        pipeline = MultimediaPipeline.attach(system)
        system.run_for(seconds(3))
        for queue in pipeline.queues:
            assert 0.0 <= queue.fill_level() <= 1.0

    def test_requires_at_least_one_stage(self):
        system = quiet_system()
        with pytest.raises(ValueError):
            MultimediaPipeline(system, stages=())

    def test_stage_spec_validation(self):
        with pytest.raises(ValueError):
            PipelineStageSpec("bad", 0)


class TestWebServer:
    def test_server_keeps_up_with_offered_load(self):
        system = quiet_system()
        server = WebServer.attach(system, requests_per_second=150.0)
        system.run_for(seconds(4))
        assert server.requests_sent > 400
        # All but a small backlog get served.
        assert server.requests_served >= server.requests_sent * 0.8
        assert server.backlog_requests() < 40

    def test_server_allocation_tracks_load_increase(self):
        def load(now_us):
            return 100.0 if now_us < 3_000_000 else 300.0

        system = quiet_system()
        server = WebServer.attach(system, requests_per_second=load)
        system.run_for(seconds(3))
        early = system.allocator.current_allocation_ppt(server.server)
        system.run_for(seconds(3))
        late = system.allocator.current_allocation_ppt(server.server)
        assert late > early

    def test_required_fraction_helper(self):
        server = WebServer(service_cpu_us=2_000, requests_per_second=100.0)
        assert server.required_fraction() == pytest.approx(0.2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WebServer(request_bytes=0)
        with pytest.raises(ValueError):
            WebServer(service_cpu_us=0)


class TestInteractiveJob:
    def test_keystrokes_answered_quickly_on_busy_system(self):
        system = quiet_system()
        job = InteractiveJob.attach(system, seed=1)
        CpuHog.attach(system)  # saturate the machine
        system.run_for(seconds(5))
        assert job.keystrokes_handled > 10
        # Responses stay within ordinary interactive tolerances even
        # with a hog saturating the CPU.
        assert job.mean_response_latency_us() < 100_000
        assert job.worst_response_latency_us() < 400_000

    def test_latency_recorded_per_keystroke(self):
        system = quiet_system()
        job = InteractiveJob.attach(system, seed=2)
        system.run_for(seconds(2))
        assert len(job.response_latencies_us) == job.keystrokes_handled
        assert all(l >= 0 for l in job.response_latencies_us)


class TestIoIntensiveJob:
    def test_throughput_limited_by_disk(self):
        system = quiet_system()
        job = IoIntensiveJob.attach(system)
        system.run_for(seconds(4))
        # One block per ~8 ms disk latency -> ~125 blocks/s ceiling.
        throughput = job.throughput_blocks_per_s(system.now)
        assert 60 <= throughput <= 130

    def test_allocation_does_not_balloon_beyond_disk_limited_need(self):
        """A disk-bottlenecked consumer must not hog the allocation.

        Because the staging buffer spends most of its time nearly empty
        (the disk, not the CPU, is the bottleneck), the controller keeps
        the application's allocation far below the maximum — the
        behaviour the Figure 4 reclaim rule exists for — while the
        application still keeps up with everything the disk delivers.
        """
        system = quiet_system()
        job = IoIntensiveJob.attach(system)
        tracer = system.kernel.tracer
        system.run_for(seconds(6))
        alloc = tracer.series(f"alloc:{job.app.name}")
        # Time-averaged allocation over the second half of the run.
        tail = [p.value for p in alloc if p.time_s > 3.0]
        mean_granted = sum(tail) / len(tail) / 1000
        assert mean_granted < 0.6
        # The application keeps pace with the disk despite the modest
        # allocation.
        assert job.blocks_processed >= job.blocks_read * 0.9

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IoIntensiveJob(disk_latency_us=0)
        with pytest.raises(ValueError):
            IoIntensiveJob(compute_us_per_block=0)


class TestSoftwareModem:
    def test_no_deadline_misses_on_idle_system(self):
        system = quiet_system()
        modem = SoftwareModem.attach(system)
        system.run_for(seconds(3))
        assert modem.periods_completed > 250
        assert modem.miss_rate() < 0.02

    def test_no_deadline_misses_under_hog_load(self):
        system = quiet_system()
        modem = SoftwareModem.attach(system)
        for i in range(3):
            CpuHog.attach(system, name=f"hog{i}")
        system.run_for(seconds(3))
        assert modem.miss_rate() < 0.05

    def test_proportion_includes_headroom(self):
        modem = SoftwareModem(period_us=10_000, work_us_per_period=1_500,
                              headroom_ppt=20)
        assert modem.proportion_ppt == 170

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SoftwareModem(period_us=1_000, work_us_per_period=1_000)


class TestInversionScenario:
    def test_fixed_priority_inversion_is_unbounded(self):
        kernel = Kernel(
            FixedPriorityScheduler(), charge_dispatch_overhead=False,
        )
        scenario = InversionScenario().attach_priority(kernel)
        kernel.run_for(seconds(5))
        assert scenario.effective_worst_latency_us(kernel.now) > 2_000_000
        assert scenario.result.iterations <= 2

    def test_priority_inheritance_bounds_latency(self):
        kernel = Kernel(
            FixedPriorityScheduler(priority_inheritance=True),
            charge_dispatch_overhead=False,
        )
        scenario = InversionScenario().attach_priority(kernel)
        kernel.run_for(seconds(5))
        assert scenario.result.iterations >= 40
        assert scenario.result.miss_rate < 0.05

    def test_real_rate_scheduling_avoids_inversion(self):
        system = quiet_system()
        scenario = InversionScenario().attach_real_rate(system)
        system.run_for(seconds(5))
        assert scenario.result.iterations >= 40
        assert scenario.result.miss_rate < 0.05
        assert scenario.effective_worst_latency_us(system.now) <= 200_000

    def test_attach_priority_requires_priority_scheduler(self):
        system = quiet_system()
        with pytest.raises(TypeError):
            InversionScenario().attach_priority(system.kernel)
