"""Tests for the crash-safe orchestration layer (repro.orchestration).

The contract under test: an interrupted, chaos-battered, retried sweep
must converge to an artifact **byte-identical** to an uninterrupted
serial run — and when it cannot (a genuinely nondeterministic point),
it must say so with an explicit FAILED row rather than a quietly
different artifact.
"""

import json

import pytest

import repro.experiments  # noqa: F401 — importing populates the registry
from repro.experiments.sweep import run_sweep, sweep_to_json
from repro.orchestration import (
    CORRUPTED_RESULT,
    CRASH,
    FINGERPRINT_MISMATCH,
    TIMEOUT,
    ChaosError,
    ChaosPlan,
    Journal,
    JournalEntry,
    JournalError,
    OrchestrationInterrupted,
    RetryPolicy,
    load_journal,
    orchestrate_sweep,
    result_fingerprint,
    run_journaled_serial,
    tear_journal_tail,
)

#: One small, fast grid reused across the end-to-end tests (~8 ms/point).
GRID = {"sim_seconds": "0.1", "seed": "0,1,2,3"}

#: A retry policy with near-zero backoff so tests never sleep long.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.02)


def serial_reference() -> str:
    return sweep_to_json(run_sweep("figure8", GRID, quick=True))


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        journal = Journal.create(
            path, run_kind="sweep", fingerprint={"experiment": "x"}
        )
        journal.record(
            JournalEntry(status="ok", key="k1", attempt=1,
                         fingerprint="f1", payload={"a": 1})
        )
        journal.record(
            JournalEntry(status="failed", key="k2", attempt=3,
                         error={"kind": CRASH, "detail": "boom", "attempts": 3})
        )
        journal.close()
        header, entries, _ = load_journal(path)
        assert header["run_kind"] == "sweep"
        assert header["fingerprint"] == {"experiment": "x"}
        assert entries["k1"].payload == {"a": 1}
        assert entries["k2"].status == "failed"
        assert entries["k2"].error["kind"] == CRASH

    def test_create_refuses_existing_journal(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        Journal.create(path, run_kind="sweep", fingerprint={}).close()
        with pytest.raises(JournalError, match="--resume"):
            Journal.create(path, run_kind="sweep", fingerprint={})

    def test_later_entry_supersedes_earlier(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        journal = Journal.create(path, run_kind="sweep", fingerprint={})
        journal.record(
            JournalEntry(status="failed", key="k", attempt=1,
                         error={"kind": CRASH, "detail": "", "attempts": 1})
        )
        journal.record(
            JournalEntry(status="ok", key="k", attempt=2,
                         fingerprint="f", payload={"fixed": True})
        )
        journal.close()
        _, entries, _ = load_journal(path)
        assert entries["k"].status == "ok"

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        journal = Journal.create(path, run_kind="sweep", fingerprint={})
        journal.record(
            JournalEntry(status="ok", key="k1", attempt=1,
                         fingerprint="f", payload={"a": 1})
        )
        journal.record(
            JournalEntry(status="ok", key="k2", attempt=1,
                         fingerprint="f", payload={"b": 2})
        )
        journal.close()
        removed = tear_journal_tail(path)
        assert removed > 0
        _, entries, _ = load_journal(path)
        assert set(entries) == {"k1"}  # only the torn tail is lost

    def test_corruption_mid_file_is_an_error(self, tmp_path):
        path = tmp_path / "run.partial.jsonl"
        journal = Journal.create(str(path), run_kind="sweep", fingerprint={})
        journal.record(
            JournalEntry(status="ok", key="k1", attempt=1,
                         fingerprint="f", payload={"a": 1})
        )
        journal.close()
        lines = path.read_text().splitlines()
        lines.insert(1, "{definitely not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="mid-file"):
            load_journal(str(path))

    def test_resume_truncates_torn_tail_and_appends(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        journal = Journal.create(path, run_kind="sweep", fingerprint={})
        journal.record(
            JournalEntry(status="ok", key="k1", attempt=1,
                         fingerprint="f", payload={"a": 1})
        )
        journal.record(
            JournalEntry(status="ok", key="k2", attempt=1,
                         fingerprint="f", payload={"b": 2})
        )
        journal.close()
        tear_journal_tail(path)
        journal, entries = Journal.resume(path, run_kind="sweep")
        assert set(entries) == {"k1"}
        journal.record(
            JournalEntry(status="ok", key="k3", attempt=1,
                         fingerprint="f", payload={"c": 3})
        )
        journal.close()
        _, entries, _ = load_journal(path)
        assert set(entries) == {"k1", "k3"}

    def test_resume_rejects_wrong_kind_and_fingerprint(self, tmp_path):
        path = str(tmp_path / "run.partial.jsonl")
        Journal.create(
            path, run_kind="sweep", fingerprint={"experiment": "figure8"}
        ).close()
        with pytest.raises(JournalError, match="belongs to"):
            Journal.resume(path, run_kind="bench")
        with pytest.raises(JournalError, match="fingerprint"):
            Journal.resume(
                path, run_kind="sweep", fingerprint={"experiment": "other"}
            )


class TestResultFingerprint:
    def test_ignores_key_order(self):
        a = {"metrics": {"x": 1.0, "y": 2.0}, "metadata": {"m": 1}}
        b = {"metadata": {"m": 1}, "metrics": {"y": 2.0, "x": 1.0}}
        assert result_fingerprint(a) == result_fingerprint(b)

    def test_covers_only_semantic_payload(self):
        base = {"metrics": {"x": 1.0}, "metadata": {}, "experiment_id": "e1"}
        stripped = {"metrics": {"x": 1.0}, "metadata": {}}
        perturbed = {"metrics": {"x": 1.5}, "metadata": {}}
        assert result_fingerprint(base) == result_fingerprint(stripped)
        assert result_fingerprint(base) != result_fingerprint(perturbed)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            max_retries=10, backoff_base_s=0.1, backoff_cap_s=0.5, jitter=0.0
        )
        delays = [policy.backoff_s("k", n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_backoff_is_deterministic_across_instances(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert [a.backoff_s("k", n) for n in (1, 2, 3)] == [
            b.backoff_s("k", n) for n in (1, 2, 3)
        ]
        assert a.backoff_s("k", 1) != RetryPolicy(seed=8).backoff_s("k", 1)

    def test_jitter_stays_under_the_cap(self):
        policy = RetryPolicy(
            max_retries=20, backoff_base_s=1.0, backoff_cap_s=2.0, jitter=0.5
        )
        for n in range(1, 20):
            assert 0.0 < policy.backoff_s("k", n) <= 2.0

    def test_terminal_kinds_never_retry(self):
        policy = RetryPolicy(max_retries=5)
        assert policy.should_retry(CRASH, 1)
        assert policy.should_retry(TIMEOUT, 5)
        assert not policy.should_retry(CRASH, 6)
        assert not policy.should_retry(FINGERPRINT_MISMATCH, 1)

    def test_rejects_nonsense_configuration(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)


# ----------------------------------------------------------------------
# chaos plan
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_parse_grammar(self):
        plan = ChaosPlan.parse("kill=1:3,hang=5,abort=4")
        assert plan.modes == {1: "kill", 3: "kill", 5: "hang"}
        assert plan.abort_after == 4

    def test_parse_rejects_unknown_modes_and_bad_indices(self):
        with pytest.raises(ChaosError):
            ChaosPlan.parse("explode=1")
        with pytest.raises(ChaosError):
            ChaosPlan.parse("kill=one")
        with pytest.raises(ChaosError):
            ChaosPlan.parse("kill")

    def test_faults_only_trigger_on_early_attempts(self):
        plan = ChaosPlan.parse("raise=0", trigger_attempts=1)
        with pytest.raises(ChaosError):
            plan.strike_pre(0, 1)
        plan.strike_pre(0, 2)  # retry attempt: no injection
        plan.strike_pre(1, 1)  # other point: no injection

    def test_corrupt_vs_nondet_fingerprints(self):
        payload = {"metrics": {"x": 1.0}, "metadata": {}, "experiment_id": "e"}
        corrupt = ChaosPlan.parse("corrupt=0").corrupt_payload(0, 1, payload)
        nondet = ChaosPlan.parse("nondet=0").corrupt_payload(0, 1, payload)
        assert "experiment_id" not in corrupt
        # corrupt keeps the semantic fingerprint -> retry can be verified
        assert result_fingerprint(corrupt) == result_fingerprint(payload)
        # nondet perturbs the metrics -> retry mismatch is detectable
        assert result_fingerprint(nondet) != result_fingerprint(payload)


# ----------------------------------------------------------------------
# end-to-end orchestration
# ----------------------------------------------------------------------
class TestOrchestrateSweep:
    def test_parallel_orchestration_byte_identical_to_serial(self, tmp_path):
        report = orchestrate_sweep(
            "figure8", GRID, quick=True, jobs=2,
            journal_path=str(tmp_path / "run.partial.jsonl"),
        )
        assert report.failed == []
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_recovers_from_kill_raise_and_corrupt(self, tmp_path):
        report = orchestrate_sweep(
            "figure8", GRID, quick=True, jobs=2,
            journal_path=str(tmp_path / "run.partial.jsonl"),
            policy=FAST_RETRY,
            chaos=ChaosPlan.parse("kill=1,raise=2,corrupt=3"),
        )
        assert report.failed == []
        attempts = {o.index: o.attempts for o in report.outcomes}
        assert attempts[1] > 1 and attempts[2] > 1 and attempts[3] > 1
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_abort_then_resume_is_byte_identical(self, tmp_path):
        journal_path = str(tmp_path / "run.partial.jsonl")
        with pytest.raises(OrchestrationInterrupted) as info:
            orchestrate_sweep(
                "figure8", GRID, quick=True,
                journal_path=journal_path,
                chaos=ChaosPlan.parse("abort=2"),
            )
        assert info.value.completed == 2
        assert info.value.total == 4
        report = orchestrate_sweep(journal_path=journal_path, resume=True)
        assert report.resumed == 2
        assert report.executed == 2
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_resume_after_torn_tail_is_byte_identical(self, tmp_path):
        journal_path = str(tmp_path / "run.partial.jsonl")
        with pytest.raises(OrchestrationInterrupted):
            orchestrate_sweep(
                "figure8", GRID, quick=True,
                journal_path=journal_path,
                chaos=ChaosPlan.parse("abort=3"),
            )
        assert tear_journal_tail(journal_path) > 0
        report = orchestrate_sweep(journal_path=journal_path, resume=True)
        assert report.resumed == 2  # the torn third point re-runs
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_nondeterministic_point_becomes_failed_row(self, tmp_path):
        report = orchestrate_sweep(
            "figure8", GRID, quick=True,
            journal_path=str(tmp_path / "run.partial.jsonl"),
            policy=FAST_RETRY,
            chaos=ChaosPlan.parse("nondet=0"),
        )
        assert [o.index for o in report.failed] == [0]
        error = report.failed[0].error
        assert error["kind"] == FINGERPRINT_MISMATCH
        point = report.artifact["points"][0]
        assert point["result"] is None
        assert point["error"]["kind"] == FINGERPRINT_MISMATCH
        # the healthy points are still byte-for-byte the serial ones
        reference = json.loads(serial_reference())
        assert report.artifact["points"][1:] == reference["points"][1:]

    def test_exhausted_retries_become_failed_row(self, tmp_path):
        report = orchestrate_sweep(
            "figure8", GRID, quick=True,
            journal_path=str(tmp_path / "run.partial.jsonl"),
            policy=FAST_RETRY,
            chaos=ChaosPlan(modes={0: "raise"}, trigger_attempts=99),
        )
        assert [o.index for o in report.failed] == [0]
        error = report.failed[0].error
        assert error["kind"] == CRASH
        assert error["attempts"] == FAST_RETRY.max_retries + 1

    def test_retry_failed_reruns_failed_rows(self, tmp_path):
        journal_path = str(tmp_path / "run.partial.jsonl")
        orchestrate_sweep(
            "figure8", GRID, quick=True,
            journal_path=journal_path,
            policy=FAST_RETRY,
            chaos=ChaosPlan(modes={0: "raise"}, trigger_attempts=99),
        )
        # without --retry-failed the FAILED row is kept as-is
        report = orchestrate_sweep(journal_path=journal_path, resume=True)
        assert [o.index for o in report.failed] == [0]
        assert report.executed == 0
        # with it, the point re-runs (chaos gone) and the sweep heals
        report = orchestrate_sweep(
            journal_path=journal_path, resume=True, retry_failed=True
        )
        assert report.failed == []
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_timeout_kills_hung_worker_and_retries(self, tmp_path):
        report = orchestrate_sweep(
            "figure8", GRID, quick=True,
            journal_path=str(tmp_path / "run.partial.jsonl"),
            policy=RetryPolicy(
                max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                timeout_s=1.0,
            ),
            chaos=ChaosPlan.parse("hang=1", hang_s=30.0),
        )
        assert report.failed == []
        timed_out = [o for o in report.outcomes if o.index == 1]
        assert timed_out[0].attempts > 1
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_pool_degrades_but_finishes_after_repeated_deaths(self, tmp_path):
        events = []
        report = orchestrate_sweep(
            "figure8", GRID, quick=True, jobs=2,
            journal_path=str(tmp_path / "run.partial.jsonl"),
            policy=RetryPolicy(
                max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                max_worker_restarts=0,
            ),
            chaos=ChaosPlan.parse("kill=0:1:2"),
            on_event=events.append,
        )
        assert report.failed == []
        assert any("degrading pool" in event for event in events)
        assert sweep_to_json(report.artifact) == serial_reference()

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        journal_path = str(tmp_path / "run.partial.jsonl")
        orchestrate_sweep(
            "figure8", GRID, quick=True, journal_path=journal_path
        )
        with pytest.raises(JournalError, match="--resume"):
            orchestrate_sweep(
                "figure8", GRID, quick=True, journal_path=journal_path
            )


# ----------------------------------------------------------------------
# journaled serial runs (the bench contract)
# ----------------------------------------------------------------------
class TestRunJournaledSerial:
    def test_skips_settled_units_on_resume(self, tmp_path):
        journal_path = str(tmp_path / "bench.partial.jsonl")
        ran = []

        def run_one(index, key):
            ran.append(key)
            if key == "b":
                raise KeyboardInterrupt
            return {"unit": key}

        with pytest.raises(OrchestrationInterrupted):
            run_journaled_serial(
                ["a", "b", "c"], run_one,
                journal_path=journal_path, run_kind="bench",
                fingerprint={"units": ["a", "b", "c"]},
            )
        assert ran == ["a", "b"]

        def run_one_resumed(index, key):
            ran.append(key)
            return {"unit": key}

        payloads, resumed = run_journaled_serial(
            ["a", "b", "c"], run_one_resumed,
            journal_path=journal_path, run_kind="bench",
            fingerprint={"units": ["a", "b", "c"]}, resume=True,
        )
        assert resumed == 1
        assert ran == ["a", "b", "b", "c"]  # "a" never re-ran
        assert payloads == {
            "a": {"unit": "a"}, "b": {"unit": "b"}, "c": {"unit": "c"}
        }

    def test_fingerprint_pins_the_configuration(self, tmp_path):
        journal_path = str(tmp_path / "bench.partial.jsonl")
        with pytest.raises(OrchestrationInterrupted):
            run_journaled_serial(
                ["a"], lambda i, k: (_ for _ in ()).throw(KeyboardInterrupt),
                journal_path=journal_path, run_kind="bench",
                fingerprint={"repeats": 3},
            )
        with pytest.raises(JournalError, match="fingerprint"):
            run_journaled_serial(
                ["a"], lambda i, k: {"unit": k},
                journal_path=journal_path, run_kind="bench",
                fingerprint={"repeats": 5}, resume=True,
            )
