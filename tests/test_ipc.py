"""Unit tests for the symbiotic IPC channels and the registry."""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer, Channel
from repro.ipc.mutex import Mutex
from repro.ipc.pipe import DEFAULT_PIPE_CAPACITY, Pipe
from repro.ipc.registry import SymbioticRegistry
from repro.ipc.roles import Role
from repro.ipc.sock import Socket
from repro.ipc.tty import INTERACTIVE_PERIOD_US, TTY
from repro.sim.errors import ChannelError
from repro.sim.thread import SimThread


class TestRoles:
    def test_signs_match_figure3(self):
        assert Role.PRODUCER.sign == -1
        assert Role.CONSUMER.sign == 1

    def test_opposite(self):
        assert Role.PRODUCER.opposite is Role.CONSUMER
        assert Role.CONSUMER.opposite is Role.PRODUCER


class TestChannel:
    def test_initial_state(self):
        channel = BoundedBuffer("q", 1_000)
        assert channel.fill_bytes() == 0
        assert channel.fill_level() == 0.0
        assert channel.space_free() == 1_000
        assert channel.is_empty()
        assert not channel.is_full()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ChannelError):
            BoundedBuffer("q", 0)

    def test_put_and_get_update_fill(self):
        channel = BoundedBuffer("q", 1_000)
        channel.commit_put(400)
        assert channel.fill_level() == pytest.approx(0.4)
        channel.commit_get(100)
        assert channel.fill_bytes() == 300
        assert channel.total_put_bytes == 400
        assert channel.total_get_bytes == 100

    def test_overflow_rejected(self):
        channel = BoundedBuffer("q", 100)
        channel.commit_put(80)
        with pytest.raises(ChannelError):
            channel.commit_put(30)

    def test_oversized_put_rejected(self):
        channel = BoundedBuffer("q", 100)
        with pytest.raises(ChannelError):
            channel.commit_put(101)

    def test_underflow_rejected(self):
        channel = BoundedBuffer("q", 100)
        with pytest.raises(ChannelError):
            channel.commit_get(1)

    def test_full_and_empty_events_counted(self):
        channel = BoundedBuffer("q", 100)
        channel.commit_put(100)
        assert channel.full_events == 1
        channel.commit_get(100)
        assert channel.empty_events == 1

    def test_kind_tags(self):
        assert BoundedBuffer("q", 10).KIND == "shared_queue"
        assert Pipe("p").KIND == "pipe"
        assert Socket("s").KIND == "socket"
        assert TTY("t").KIND == "tty"

    def test_pipe_default_capacity(self):
        assert Pipe("p").capacity_bytes == DEFAULT_PIPE_CAPACITY

    def test_socket_send_buffer_lazy(self):
        sock = Socket("s")
        assert sock._send_buffer is None
        send = sock.send_buffer
        assert isinstance(send, Channel)
        assert sock.send_buffer is send

    def test_interactive_period_constant(self):
        assert INTERACTIVE_PERIOD_US == 30_000


class TestMutex:
    def test_initial_state(self):
        mutex = Mutex("m")
        assert not mutex.is_locked()
        assert mutex.owner is None
        assert list(mutex.waiters) == []


class TestSymbioticRegistry:
    def test_register_and_query(self):
        registry = SymbioticRegistry()
        producer = SimThread("p")
        consumer = SimThread("c")
        queue = BoundedBuffer("q", 100)
        registry.register_pair(producer, consumer, queue)
        assert len(registry) == 2
        assert registry.has_progress_metric(producer)
        assert registry.has_progress_metric(consumer)
        assert registry.linkages_for(producer)[0].role is Role.PRODUCER
        assert registry.linkages_for(consumer)[0].role is Role.CONSUMER

    def test_unknown_thread_has_no_metric(self):
        registry = SymbioticRegistry()
        assert not registry.has_progress_metric(SimThread("lonely"))
        assert registry.linkages_for(SimThread("lonely")) == []

    def test_duplicate_registration_rejected(self):
        registry = SymbioticRegistry()
        thread = SimThread("t")
        queue = BoundedBuffer("q", 100)
        registry.register(thread, queue, Role.CONSUMER)
        with pytest.raises(ChannelError):
            registry.register(thread, queue, Role.PRODUCER)

    def test_channel_name_collision_rejected(self):
        registry = SymbioticRegistry()
        registry.register(SimThread("a"), BoundedBuffer("q", 100), Role.CONSUMER)
        with pytest.raises(ChannelError):
            registry.register(SimThread("b"), BoundedBuffer("q", 200), Role.CONSUMER)

    def test_unregister_thread(self):
        registry = SymbioticRegistry()
        thread = SimThread("t")
        registry.register(thread, BoundedBuffer("q1", 100), Role.CONSUMER)
        registry.register(thread, BoundedBuffer("q2", 100), Role.PRODUCER)
        removed = registry.unregister_thread(thread)
        assert removed == 2
        assert not registry.has_progress_metric(thread)

    def test_unregister_channel(self):
        registry = SymbioticRegistry()
        queue = BoundedBuffer("q", 100)
        registry.register_pair(SimThread("p"), SimThread("c"), queue)
        removed = registry.unregister_channel(queue)
        assert removed == 2
        assert registry.channel_by_name("q") is None

    def test_peers_of_finds_pipeline_neighbours(self):
        registry = SymbioticRegistry()
        a, b, c = SimThread("a"), SimThread("b"), SimThread("c")
        q1 = BoundedBuffer("q1", 100)
        q2 = BoundedBuffer("q2", 100)
        registry.register_pair(a, b, q1)
        registry.register_pair(b, c, q2)
        assert registry.peers_of(b) == [a, c]
        assert registry.peers_of(a) == [b]

    def test_channels_lists_registered(self):
        registry = SymbioticRegistry()
        queue = BoundedBuffer("q", 100)
        registry.register(SimThread("t"), queue, Role.CONSUMER)
        assert registry.channels() == [queue]
        assert registry.channel_by_name("q") is queue

    def test_linkage_pressure_sign(self):
        registry = SymbioticRegistry()
        thread = SimThread("t")
        queue = BoundedBuffer("q", 100)
        linkage = registry.register(thread, queue, Role.PRODUCER)
        assert linkage.pressure_sign() == -1
