"""Kernel error- and edge-path tests.

Covers the less-travelled paths of :mod:`repro.sim.kernel` and
:mod:`repro.sim.events`: deadlock detection with mutual blocking (on
one CPU and on several), releasing a mutex the thread does not hold,
event cancellation interleaved with re-scheduling under ``pop_due``,
and the zero-length sleep that must behave as a yield.
"""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.mutex import Mutex
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import DeadlockError, ThreadStateError
from repro.sim.events import EventQueue
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, ReleaseMutex, Sleep


def make_kernel(n_cpus=1, **kwargs):
    kwargs.setdefault("charge_dispatch_overhead", False)
    kwargs.setdefault("syscall_cost_us", 0)
    return Kernel(RoundRobinScheduler(), n_cpus=n_cpus, **kwargs)


class TestDeadlockEdges:
    def _mutually_blocked(self, kernel):
        # Two producers into full buffers that nobody ever drains.
        q1 = BoundedBuffer("q1", 100)
        q2 = BoundedBuffer("q2", 100)

        def blocked_producer(queue):
            def body(env):
                yield Put(queue, 100)   # fills the buffer
                yield Put(queue, 100)   # blocks forever
            return body

        kernel.spawn("p1", blocked_producer(q1))
        kernel.spawn("p2", blocked_producer(q2))

    def test_mutual_block_raises_with_all_names(self):
        kernel = make_kernel()
        self._mutually_blocked(kernel)
        with pytest.raises(DeadlockError) as exc:
            kernel.run_for(10_000)
        assert "p1" in str(exc.value) and "p2" in str(exc.value)

    def test_mutual_block_raises_on_smp_too(self):
        kernel = make_kernel(n_cpus=2)
        self._mutually_blocked(kernel)
        with pytest.raises(DeadlockError):
            kernel.run_for(10_000)

    def test_sleeper_prevents_deadlock_verdict(self):
        # A sleeping thread means a future wake-up exists: no deadlock.
        kernel = make_kernel()
        queue = BoundedBuffer("q", 100)

        def consumer(env):
            yield Get(queue, 100)

        def sleeper(env):
            yield Sleep(50_000)

        kernel.spawn("consumer", consumer)
        kernel.spawn("sleeper", sleeper)
        kernel.run_for(20_000)  # < wake-up: idles, must not raise
        assert kernel.now == 20_000


class TestMutexMisuse:
    def test_release_unheld_mutex_raises(self):
        kernel = make_kernel()
        mutex = Mutex("m")

        def rogue(env):
            yield Compute(100)
            yield ReleaseMutex(mutex)

        kernel.spawn("rogue", rogue)
        with pytest.raises(ThreadStateError, match="does not hold"):
            kernel.run_for(10_000)

    def test_release_mutex_held_by_other_thread_raises(self):
        kernel = make_kernel()
        mutex = Mutex("m")
        # Mark the mutex as held by another (idle) thread.
        holder = kernel.spawn("holder", lambda env: iter(()))
        mutex.owner = holder

        def thief(env):
            yield ReleaseMutex(mutex)

        kernel.spawn("thief", thief)
        with pytest.raises(ThreadStateError, match="does not hold"):
            kernel.run_for(10_000)


class TestEventQueueCancellationUnderPopDue:
    def test_cancel_then_reschedule_fires_once_at_new_time(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(100, lambda: fired.append("old"))
        event.cancel()
        queue.schedule(200, lambda: fired.append("new"))

        # Nothing due at the cancelled event's time.
        assert queue.pop_due(150) is None
        popped = queue.pop_due(250)
        assert popped is not None
        popped.callback()
        assert fired == ["new"]
        assert queue.pop_due(1_000) is None

    def test_cancel_mid_drain_skips_only_cancelled(self):
        queue = EventQueue()
        fired = []
        a = queue.schedule(10, lambda: fired.append("a"))
        b = queue.schedule(20, lambda: fired.append("b"))
        c = queue.schedule(30, lambda: fired.append("c"))

        first = queue.pop_due(100)
        first.callback()
        b.cancel()  # cancel while the queue is being drained
        while (event := queue.pop_due(100)) is not None:
            if not event.cancelled:
                event.callback()
        assert fired == ["a", "c"]

    def test_reschedule_same_time_preserves_fifo_with_cancellation(self):
        queue = EventQueue()
        fired = []
        a = queue.schedule(50, lambda: fired.append("a"))
        queue.schedule(50, lambda: fired.append("b"))
        a.cancel()
        queue.schedule(50, lambda: fired.append("a2"))
        while (event := queue.pop_due(50)) is not None:
            if not event.cancelled:
                event.callback()
        assert fired == ["b", "a2"]

    def test_len_and_next_time_after_cancel_reschedule_cycles(self):
        queue = EventQueue()
        for _ in range(3):
            event = queue.schedule(10, lambda: None)
            event.cancel()
            assert queue.next_time() is None
            assert len(queue) == 0
        queue.schedule(5, lambda: None)
        assert queue.next_time() == 5
        assert len(queue) == 1


class TestZeroLengthSleep:
    def test_sleep_zero_yields_instead_of_sleeping(self):
        kernel = Kernel(
            RoundRobinScheduler(),
            charge_dispatch_overhead=False,
            syscall_cost_us=1,
        )
        progress = []

        def yielder(env):
            for _ in range(3):
                yield Sleep(0)
                progress.append(env.now)

        def spinner(env):
            while True:
                yield Compute(500)

        t = kernel.spawn("yielder", yielder)
        kernel.spawn("spinner", spinner)
        kernel.run_for(20_000)
        # The zero-sleeps completed (the thread was not parked forever)…
        assert len(progress) == 3
        assert t.state.value == "exited"
        # …and were accounted as voluntary yields, not sleeps.
        assert t.accounting.sleeps == 0
        assert t.accounting.voluntary_switches >= 3
        # No wake-up event was ever scheduled for a zero sleep.
        assert t.wakeup_event is None
