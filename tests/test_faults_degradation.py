"""Unit tests for the squish / shed / revoke degradation chain."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import DegradationManager
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel

from tests.conftest import spin_body


def make_kernel(n_cpus: int = 2) -> Kernel:
    return Kernel(
        ReservationScheduler(),
        n_cpus=n_cpus,
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
    )


def reserve(kernel, name, ppt, period_us=10_000):
    thread = kernel.spawn(name, spin_body())
    kernel.scheduler.set_reservation(thread, ppt, period_us)
    return thread


class TestDegrade:
    def test_no_action_when_capacity_still_fits(self):
        kernel = make_kernel(n_cpus=4)
        for i in range(3):
            reserve(kernel, f"w{i}", 400)
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(5_000)
        kernel.fail_cpu(3)  # 1200 ppt still fits 3000
        assert manager.actions == []
        assert manager.pending_restorations() == 0

    def test_squish_scales_proportionally_and_restores(self):
        kernel = make_kernel(n_cpus=2)
        threads = [reserve(kernel, f"w{i}", 400) for i in range(4)]
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(10_000)
        kernel.fail_cpu(1)  # 1600 ppt against a 1000 budget
        squishes = [a for a in manager.actions if a.action == "squish"]
        assert len(squishes) == 4
        assert all(a.after_ppt == 250 for a in squishes)
        assert kernel.scheduler.total_reserved_ppt() == 1_000
        assert manager.pending_restorations() == 4
        kernel.run_for(10_000)
        kernel.recover_cpu(1)
        # Re-admission is delayed by the backoff, then full.
        assert manager.pending_restorations() == 4
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        assert manager.pending_restorations() == 0
        for thread in threads:
            assert kernel.scheduler.reservation(thread).proportion_ppt == 400

    def test_shed_kills_best_effort_newest_first(self):
        kernel = make_kernel(n_cpus=2)
        # Floors won't fit: squishing to min_ppt still oversubscribes.
        for i in range(3):
            reserve(kernel, f"rt{i}", 900)
        best_effort = [kernel.spawn(f"be{i}", spin_body()) for i in range(2)]
        manager = DegradationManager(
            kernel, kernel.scheduler, min_proportion_ppt=600
        )
        kernel.run_for(5_000)
        kernel.fail_cpu(1)  # floors 3 x 600 = 1800 > 1000
        sheds = [a for a in manager.actions if a.action == "shed"]
        assert [a.thread for a in sheds] == ["be1", "be0"]  # newest first
        assert all(not t.state.is_live for t in best_effort)

    def test_revoke_lowest_value_until_fit(self):
        kernel = make_kernel(n_cpus=2)
        small = reserve(kernel, "small", 700)
        big = reserve(kernel, "big", 900)
        manager = DegradationManager(
            kernel, kernel.scheduler, min_proportion_ppt=700
        )
        kernel.run_for(5_000)
        kernel.fail_cpu(1)  # floors 700 + 900*1000//1600=562 -> 700+700
        revokes = [a for a in manager.actions if a.action == "revoke"]
        assert len(revokes) >= 1
        # The smallest reservation goes first.
        assert revokes[0].thread == "small"
        assert kernel.scheduler.reservation(small) is None
        assert kernel.scheduler.reservation(big) is not None
        assert kernel.scheduler.total_reserved_ppt() <= 1_000
        # Recovery re-admits the revoked reservation at full value.
        kernel.run_for(5_000)
        kernel.recover_cpu(1)
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        assert kernel.scheduler.reservation(small).proportion_ppt == 700
        readmits = [a for a in manager.actions if a.action == "readmit"]
        assert [a.thread for a in readmits] == ["small"]
        assert manager.pending_restorations() == 0

    def test_on_shed_callback_fires_before_kill(self):
        kernel = make_kernel(n_cpus=2)
        reserve(kernel, "rt0", 800)
        reserve(kernel, "rt1", 800)
        kernel.spawn("be", spin_body())
        seen = []
        manager = DegradationManager(
            kernel,
            kernel.scheduler,
            min_proportion_ppt=600,
            on_shed=lambda thread: seen.append(
                (thread.name, thread.state.is_live)
            ),
        )
        kernel.run_for(5_000)
        kernel.fail_cpu(1)  # floors 2 x 600 = 1200 > 1000 -> shed
        assert seen == [("be", True)]  # observed alive, then killed
        assert manager.actions[-1].action in ("shed", "revoke")


class TestBackoff:
    def test_backoff_doubles_while_capacity_is_short(self):
        kernel = make_kernel(n_cpus=4)
        for i in range(4):
            reserve(kernel, f"w{i}", 900)
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(5_000)
        kernel.fail_cpu(3)
        kernel.fail_cpu(2)  # 3600 ppt against 2000: deep squish
        assert manager.pending_restorations() == 4
        kernel.run_for(5_000)
        kernel.recover_cpu(2)  # 3000 budget: still not enough for 3600
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        # Partial restoration happened; the rest is still pending with a
        # doubled backoff.
        assert 0 < manager.pending_restorations() <= 4
        assert manager._backoff_us == 2 * manager.readmit_backoff_us
        kernel.run_for(2 * manager.readmit_backoff_us + 5_000)
        # Still short: the retry fired again but could not finish.
        assert manager.pending_restorations() > 0
        kernel.recover_cpu(3)
        kernel.run_for(8 * manager.readmit_backoff_us)
        assert manager.pending_restorations() == 0
        assert kernel.scheduler.total_reserved_ppt() == 3_600
        # Backoff resets once everything is home.
        assert manager._backoff_us == manager.readmit_backoff_us

    def test_backoff_caps_and_holds_while_short(self):
        """The doubled backoff saturates at max_backoff_us and stays
        there — capacity flapping cannot push retries out forever."""
        kernel = make_kernel(n_cpus=4)
        for i in range(4):
            reserve(kernel, f"w{i}", 900)
        manager = DegradationManager(
            kernel,
            kernel.scheduler,
            readmit_backoff_us=10_000,
            max_backoff_us=40_000,
        )
        kernel.run_for(5_000)
        kernel.fail_cpu(3)
        kernel.fail_cpu(2)
        kernel.fail_cpu(1)  # 3600 ppt against 1000: deep squish
        kernel.recover_cpu(1)  # 2000 budget: still short by 1600
        # Let many retries fire: 10k + 20k + 40k + 40k + 40k ...
        kernel.run_for(400_000)
        assert manager.pending_restorations() > 0
        assert manager._backoff_us == 40_000  # capped, not 160k+
        # Full recovery drains the queue and resets the backoff.
        kernel.recover_cpu(2)
        kernel.recover_cpu(3)
        kernel.run_for(400_000)
        assert manager.pending_restorations() == 0
        assert kernel.scheduler.total_reserved_ppt() == 3_600
        assert manager._backoff_us == 10_000

    def test_recovery_while_backoff_pending_schedules_one_readmit(self):
        """A second capacity recovery landing inside the backoff window
        must not double-schedule the re-admission event (each thread is
        restored exactly once)."""
        kernel = make_kernel(n_cpus=3)
        threads = [reserve(kernel, f"w{i}", 400) for i in range(6)]
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(5_000)
        kernel.fail_cpu(2)
        kernel.fail_cpu(1)  # 2400 ppt against 1000
        assert manager.pending_restorations() == 6
        kernel.recover_cpu(1)  # schedules readmit at now + backoff
        assert manager._readmit_pending
        kernel.run_for(manager.readmit_backoff_us // 4)
        kernel.recover_cpu(2)  # second recovery inside the window
        assert manager._readmit_pending
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        # One readmit pass restored everything, once each.
        restores = [a for a in manager.actions if a.action == "restore"]
        assert sorted(a.thread for a in restores) == sorted(
            t.name for t in threads
        )
        assert manager.pending_restorations() == 0
        assert manager._backoff_us == manager.readmit_backoff_us
        assert not manager._readmit_pending

    def test_revoked_threads_readmit_most_valuable_first(self):
        """With several revoked reservations, recovery re-admits in
        descending original-value order — the thread that lost the most
        gets back first."""
        kernel = make_kernel(n_cpus=2)
        small = reserve(kernel, "small", 600)
        mid = reserve(kernel, "mid", 700)
        big = reserve(kernel, "big", 700)
        manager = DegradationManager(
            kernel, kernel.scheduler, min_proportion_ppt=600
        )
        kernel.run_for(5_000)
        kernel.fail_cpu(1)  # floors 3 x 600 = 1800 > 1000 -> revoke two
        revokes = [a for a in manager.actions if a.action == "revoke"]
        assert [a.thread for a in revokes] == ["small", "mid"]
        assert kernel.scheduler.reservation(small) is None
        assert kernel.scheduler.reservation(mid) is None

        kernel.run_for(5_000)
        kernel.recover_cpu(1)
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        readmits = [a for a in manager.actions if a.action == "readmit"]
        # mid lost 700, small lost 600: mid returns first.
        assert [a.thread for a in readmits] == ["mid", "small"]
        assert kernel.scheduler.reservation(mid).proportion_ppt == 700
        assert kernel.scheduler.reservation(small).proportion_ppt == 600
        assert kernel.scheduler.reservation(big).proportion_ppt == 700
        assert manager.pending_restorations() == 0

    @settings(max_examples=15, deadline=None)
    @given(
        ppts=st.lists(
            st.integers(min_value=100, max_value=900), min_size=2, max_size=5
        ),
        recover_delay_us=st.integers(min_value=0, max_value=30_000),
    )
    def test_fail_recover_always_converges(self, ppts, recover_delay_us):
        """Property: after any single fail/recover cycle the manager (a)
        never leaves the budget oversubscribed while degraded and (b)
        eventually restores every reservation exactly, resetting the
        backoff."""
        kernel = make_kernel(n_cpus=4)
        threads = [
            reserve(kernel, f"w{i}", ppt) for i, ppt in enumerate(ppts)
        ]
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(2_000)
        kernel.fail_cpu(3)
        kernel.fail_cpu(2)
        kernel.fail_cpu(1)
        assert kernel.scheduler.total_reserved_ppt() <= manager.budget_ppt()
        kernel.run_for(recover_delay_us)
        kernel.recover_cpu(1)
        kernel.run_for(recover_delay_us)
        kernel.recover_cpu(2)
        kernel.recover_cpu(3)
        kernel.run_for(30 * manager.readmit_backoff_us)
        assert manager.pending_restorations() == 0
        for thread, ppt in zip(threads, ppts):
            assert kernel.scheduler.reservation(thread).proportion_ppt == ppt
        assert manager._backoff_us == manager.readmit_backoff_us

    def test_constructor_validation(self):
        kernel = make_kernel()
        with pytest.raises(ValueError, match="min_proportion_ppt"):
            DegradationManager(kernel, kernel.scheduler, min_proportion_ppt=-1)
        with pytest.raises(ValueError, match="readmit_backoff_us"):
            DegradationManager(kernel, kernel.scheduler, readmit_backoff_us=0)


class TestExitDuringDegradation:
    def test_exited_threads_are_dropped_from_restoration(self):
        kernel = make_kernel(n_cpus=2)
        threads = [reserve(kernel, f"w{i}", 800) for i in range(2)]
        manager = DegradationManager(kernel, kernel.scheduler)
        kernel.run_for(5_000)
        kernel.fail_cpu(1)
        assert manager.pending_restorations() == 2
        kernel.kill_thread(threads[0])
        kernel.run_for(2_000)
        kernel.recover_cpu(1)
        kernel.run_for(manager.readmit_backoff_us + 5_000)
        # The dead thread is forgotten, the survivor fully restored.
        assert manager.pending_restorations() == 0
        assert kernel.scheduler.reservation(threads[1]).proportion_ppt == 800
