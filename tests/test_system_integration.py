"""Integration tests for the assembled real-rate system facade."""

import pytest

from repro.core.config import ControllerConfig
from repro.core.taxonomy import ThreadSpec
from repro.ipc.roles import Role
from repro.ipc.tty import TTY
from repro.sim.clock import seconds
from repro.sim.requests import Compute, Get, Put
from repro.system import build_real_rate_system

from tests.conftest import spin_body


class TestBuildRealRateSystem:
    def test_components_are_wired(self):
        system = build_real_rate_system()
        assert system.kernel.scheduler is system.scheduler
        assert system.allocator.scheduler is system.scheduler
        assert system.allocator.registry is system.registry
        assert system.driver.allocator is system.allocator

    def test_spawn_controlled_registers_with_allocator(self):
        system = build_real_rate_system()
        thread = system.spawn_controlled("t", spin_body())
        assert thread in system.allocator.controlled_threads()

    def test_open_queue_registers_roles(self):
        system = build_real_rate_system()
        producer = system.spawn_controlled("p", spin_body())
        consumer = system.spawn_controlled("c", spin_body())
        queue = system.open_queue("q", producer, consumer, capacity_bytes=512)
        roles = {
            l.thread.name: l.role for l in system.registry.linkages_on(queue)
        }
        assert roles == {"p": Role.PRODUCER, "c": Role.CONSUMER}
        assert queue.capacity_bytes == 512

    def test_link_existing_channel(self):
        system = build_real_rate_system()
        thread = system.spawn_controlled("editor", spin_body())
        tty = TTY("tty0")
        system.link(thread, tty, Role.CONSUMER)
        assert system.registry.has_progress_metric(thread)

    def test_run_for_advances_time(self):
        system = build_real_rate_system()
        system.run_for(seconds(0.5))
        assert system.now == seconds(0.5)

    def test_custom_config_respected(self):
        config = ControllerConfig(controller_period_us=5_000)
        system = build_real_rate_system(config)
        assert system.driver.period_us == 5_000
        system.run_for(50_000)
        assert system.driver.invocations == 10

    def test_overheads_can_be_disabled(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        system.spawn_controlled("hog", spin_body())
        system.run_for(seconds(1))
        assert system.kernel.stolen_us == 0

    def test_overheads_charged_by_default(self):
        system = build_real_rate_system()
        system.spawn_controlled("hog", spin_body())
        system.run_for(seconds(1))
        assert system.kernel.stolen_dispatch_us > 0
        assert system.kernel.stolen_controller_us > 0


class TestEndToEndPipeline:
    def test_three_stage_pipeline_reaches_steady_state(self):
        """A producer -> filter -> consumer chain all under feedback."""
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )

        q1_capacity = 4_000
        q2_capacity = 4_000

        def source_body(env):
            while True:
                yield Compute(1_000)
                yield Put(q1, 20)

        def filter_body(env):
            while True:
                yield Get(q1, 20)
                yield Compute(2_000)
                yield Put(q2, 20)

        def sink_body(env):
            while True:
                yield Get(q2, 20)
                yield Compute(500)

        source2 = system.spawn_controlled(
            "source2", source_body,
            spec=ThreadSpec(proportion_ppt=150, period_us=10_000),
        )
        filt = system.spawn_controlled("filter", filter_body)
        sink = system.spawn_controlled("sink", sink_body)
        q1 = system.open_queue("q1", source2, filt, capacity_bytes=q1_capacity)
        q2 = system.open_queue("q2", filt, sink, capacity_bytes=q2_capacity)

        system.run_for(seconds(5))

        # The filter needs roughly twice the source's CPU (2 ms vs 1 ms
        # per block); the controller must discover that.
        filter_ppt = system.allocator.current_allocation_ppt(filt)
        source_share = source2.accounting.total_us / system.now
        filter_share = filt.accounting.total_us / system.now
        assert filter_share > source_share * 1.4
        assert filter_ppt > 150
        # Queues are under control (not saturated).
        assert 0.05 < q1.fill_level() < 0.95
        assert 0.05 < q2.fill_level() < 0.95

    def test_total_allocation_stays_under_threshold_with_many_jobs(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        for i in range(6):
            system.spawn_controlled(f"hog{i}", spin_body())
        system.run_for(seconds(3))
        total = system.allocator.total_allocated_ppt()
        assert total <= system.allocator.config.overload_threshold_ppt + 6

    def test_cpu_accounting_conserved(self):
        system = build_real_rate_system()
        for i in range(3):
            system.spawn_controlled(f"hog{i}", spin_body())
        system.run_for(seconds(1))
        kernel = system.kernel
        busy = kernel.total_thread_cpu_us()
        assert busy + kernel.idle_us + kernel.stolen_us == kernel.now
