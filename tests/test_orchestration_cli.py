"""CLI-level behaviour of crash-safe sweeps and journaled benches.

Covers the exit-code contract (0 clean, 1 FAILED rows, 2 usage,
130 interrupted), journal lifecycle (created beside the artifact,
deleted only after full success), the resume flow, and — via a real
subprocess — Ctrl-C: SIGINT must flush the journal, print the resume
command, and exit 130, and the resumed run must produce an artifact
byte-identical to an uninterrupted serial one.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_INTERRUPTED, main
from repro.experiments.sweep import run_sweep, sweep_to_json
from repro.orchestration import Journal

REPO_SRC = Path(__file__).parent.parent / "src"

#: Small fast grid for in-process CLI tests (~8 ms/point).
FAST = ["--quick", "--param", "sim_seconds=0.1", "--param", "seed=0,1,2,3"]


def fast_reference() -> str:
    artifact = run_sweep(
        "figure8", {"sim_seconds": "0.1", "seed": "0,1,2,3"}, quick=True
    )
    return sweep_to_json(artifact) + "\n"


class TestSweepCli:
    def test_journal_deleted_after_full_success(self, tmp_path, capsys):
        out = tmp_path / "f8.json"
        assert main(["sweep", "figure8", *FAST, "--json", str(out)]) == 0
        assert out.read_text() == fast_reference()
        assert not (tmp_path / "f8.partial.jsonl").exists()

    def test_keep_journal_flag(self, tmp_path, capsys):
        out = tmp_path / "f8.json"
        code = main(
            ["sweep", "figure8", *FAST, "--json", str(out), "--keep-journal"]
        )
        assert code == 0
        assert (tmp_path / "f8.partial.jsonl").exists()

    def test_resume_forbids_experiment_and_params(self, tmp_path, capsys):
        code = main(
            ["sweep", "figure8", "--resume", str(tmp_path / "j.partial.jsonl")]
        )
        assert code == 2
        assert "journal header" in capsys.readouterr().err

    def test_existing_journal_is_a_usage_error(self, tmp_path, capsys):
        out = tmp_path / "f8.json"
        args = ["sweep", "figure8", *FAST, "--json", str(out), "--keep-journal"]
        assert main(args) == 0
        assert main(args) == 2
        assert "--resume" in capsys.readouterr().err

    def test_chaos_abort_exits_130_then_resume_heals(self, tmp_path, capsys):
        out = tmp_path / "f8.json"
        journal = tmp_path / "f8.partial.jsonl"
        code = main(
            ["sweep", "figure8", *FAST, "--json", str(out), "--chaos", "abort=2"]
        )
        assert code == EXIT_INTERRUPTED
        err = capsys.readouterr().err
        assert f"--resume {journal}" in err
        assert journal.exists()
        assert not out.exists()

        assert main(["sweep", "--resume", str(journal), "--json", str(out)]) == 0
        assert out.read_text() == fast_reference()
        assert not journal.exists()  # success deletes the journal

    def test_failed_points_exit_1_and_keep_journal(self, tmp_path, capsys):
        out = tmp_path / "f8.json"
        journal = tmp_path / "f8.partial.jsonl"
        code = main([
            "sweep", "figure8", *FAST, "--json", str(out),
            "--chaos", "nondet=0",
            "--backoff", "0.01", "--backoff-cap", "0.02",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.out
        assert "--retry-failed" in captured.err
        assert journal.exists()
        data = json.loads(out.read_text())
        assert data["points"][0]["result"] is None
        assert (
            data["points"][0]["error"]["kind"] == "fingerprint-mismatch-on-retry"
        )
        # --retry-failed re-runs the failed point; without chaos it heals
        code = main([
            "sweep", "--resume", str(journal), "--retry-failed",
            "--json", str(out),
        ])
        assert code == 0
        assert out.read_text() == fast_reference()

    def test_bad_chaos_spec_is_a_usage_error(self, tmp_path, capsys):
        code = main(["sweep", "figure8", *FAST, "--chaos", "explode=1"])
        assert code == 2
        assert "unknown chaos mode" in capsys.readouterr().err


class TestSweepSigint:
    def test_sigint_flushes_journal_and_resume_is_byte_identical(
        self, tmp_path
    ):
        """The acceptance test: interrupt a real `python -m repro sweep`
        subprocess with SIGINT mid-run, then resume to a byte-identical
        artifact."""
        out = tmp_path / "f8.json"
        journal = tmp_path / "f8.partial.jsonl"
        grid = {"sim_seconds": "2", "seed": ",".join(str(s) for s in range(10))}
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "sweep", "figure8", "--quick",
                "--param", f"sim_seconds={grid['sim_seconds']}",
                "--param", f"seed={grid['seed']}",
                "--jobs", "1", "--json", str(out),
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                    break  # header + at least one settled point
                if proc.poll() is not None:
                    pytest.fail(
                        f"sweep finished before it could be interrupted: "
                        f"{proc.communicate()}"
                    )
                time.sleep(0.01)
            else:
                pytest.fail("journal never accumulated a settled point")
            proc.send_signal(signal.SIGINT)
            _, stderr = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == EXIT_INTERRUPTED, stderr
        assert "interrupted" in stderr
        assert f"--resume {journal}" in stderr
        assert journal.exists()
        assert not out.exists()

        # resume in-process and compare bytes against the serial run
        assert main(["sweep", "--resume", str(journal), "--json", str(out)]) == 0
        reference = sweep_to_json(run_sweep("figure8", grid, quick=True)) + "\n"
        assert out.read_text() == reference
        assert not journal.exists()


class TestBenchCli:
    def test_journaled_bench_deletes_journal_on_success(self, tmp_path, capsys):
        journal = tmp_path / "bench.partial.jsonl"
        code = main([
            "bench", "overload64", "--quick", "--repeats", "1",
            "--no-history", "--journal", str(journal), "--json", "-",
        ])
        assert code == 0
        assert not journal.exists()
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "bench"
        assert [s["name"] for s in data["scenarios"]] == ["overload64"]

    def test_bench_resume_validates_fingerprint(self, tmp_path, capsys):
        journal = tmp_path / "bench.partial.jsonl"
        Journal.create(
            str(journal),
            run_kind="bench",
            fingerprint={"scenarios": ["overload64"], "quick": True,
                         "repeats": 1},
        ).close()
        # mismatched repeats -> usage error, journal untouched
        code = main([
            "bench", "overload64", "--quick", "--repeats", "2",
            "--no-history", "--resume", str(journal), "--json", "-",
        ])
        assert code == 2
        assert "fingerprint" in capsys.readouterr().err
        assert journal.exists()
        # matching configuration -> resumes (nothing settled, runs all)
        code = main([
            "bench", "overload64", "--quick", "--repeats", "1",
            "--no-history", "--resume", str(journal), "--json", "-",
        ])
        assert code == 0
        assert not journal.exists()
