"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.regression import linear_fit
from repro.analysis.series import rate_from_cumulative, sparkline
from repro.core.config import ControllerConfig
from repro.core.estimator import ProportionEstimator
from repro.core.overload import FairShareSquish, SquishRequest, WeightedFairShareSquish
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.monitor.usage import UsageSample
from repro.sched.rbs import Reservation
from repro.sim.events import EventQueue
from repro.swift.pid import PIDController, PIDGains

# ----------------------------------------------------------------------
# Event queue ordering
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=50))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for t in times:
        queue.schedule(t, lambda: None)
    popped = []
    while True:
        event = queue.pop_due(20_000)
        if event is None:
            break
        popped.append(event.time)
    assert popped == sorted(times)


# ----------------------------------------------------------------------
# Bounded buffer conservation
# ----------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=10_000),
    st.lists(st.integers(min_value=1, max_value=500), max_size=60),
)
def test_bounded_buffer_fill_never_exceeds_capacity(capacity, operations):
    buffer = BoundedBuffer("q", capacity)
    for op in operations:
        if op % 2 == 0 and buffer.space_free() >= op:
            buffer.commit_put(op)
        elif buffer.bytes_available() >= op:
            buffer.commit_get(op)
        assert 0 <= buffer.fill_bytes() <= capacity
        assert (
            buffer.total_put_bytes - buffer.total_get_bytes == buffer.fill_bytes()
        )


# ----------------------------------------------------------------------
# Reservation accounting
# ----------------------------------------------------------------------


@given(
    proportion=st.integers(min_value=0, max_value=1_000),
    period=st.integers(min_value=1_000, max_value=100_000),
    now=st.integers(min_value=0, max_value=10_000_000),
)
def test_reservation_allocation_bounded_by_period(proportion, period, now):
    reservation = Reservation(proportion_ppt=proportion, period_us=period)
    assert 0 <= reservation.allocation_us <= period
    reservation.advance_to(now)
    assert reservation.period_start <= now or now < period
    assert reservation.used_in_period_us == 0


@given(
    proportion=st.integers(min_value=1, max_value=1_000),
    period=st.integers(min_value=1_000, max_value=100_000),
    charges=st.lists(st.integers(min_value=1, max_value=5_000), max_size=30),
)
def test_reservation_remaining_never_negative(proportion, period, charges):
    reservation = Reservation(proportion_ppt=proportion, period_us=period)
    for charge in charges:
        reservation.used_in_period_us += charge
        assert reservation.remaining_us >= 0


# ----------------------------------------------------------------------
# Squish policies
# ----------------------------------------------------------------------

squish_requests = st.lists(
    st.builds(
        SquishRequest,
        key=st.integers(min_value=0, max_value=1_000_000),
        desired_ppt=st.integers(min_value=0, max_value=1_000),
        importance=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=10,
    unique_by=lambda r: r.key,
)


@given(requests=squish_requests, available=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=200)
def test_squish_never_grants_more_than_desired(requests, available):
    for policy in (FairShareSquish(5), WeightedFairShareSquish(5)):
        grants = policy.squish(list(requests), available)
        for request in requests:
            assert grants[request.key] <= max(request.desired_ppt,
                                              min(5, request.desired_ppt))
            assert grants[request.key] >= 0


@given(requests=squish_requests, available=st.integers(min_value=0, max_value=1_000))
@settings(max_examples=200)
def test_squish_respects_budget_up_to_minimum_floors(requests, available):
    """The total grant never exceeds the budget plus the starvation floors.

    (Each request may be topped up to the minimum proportion even when
    the budget is tiny — that slack is what the overload threshold's
    reserve capacity absorbs.)
    """
    policy = FairShareSquish(5)
    grants = policy.squish(list(requests), available)
    floor_total = sum(min(5, r.desired_ppt) for r in requests)
    assert sum(grants.values()) <= available + floor_total + len(requests)


@given(requests=squish_requests)
@settings(max_examples=100)
def test_squish_grants_everything_when_budget_is_ample(requests):
    policy = WeightedFairShareSquish(5)
    total = sum(r.desired_ppt for r in requests)
    grants = policy.squish(list(requests), total)
    for request in requests:
        assert grants[request.key] == request.desired_ppt


# ----------------------------------------------------------------------
# PID controller
# ----------------------------------------------------------------------


@given(
    errors=st.lists(
        st.floats(min_value=-0.5, max_value=0.5, allow_nan=False), min_size=1,
        max_size=200,
    )
)
def test_pid_output_respects_saturation_bounds(errors):
    pid = PIDController(PIDGains(kp=1.0, ki=2.0, kd=0.1), output_low=0.0,
                        output_high=1.0)
    for error in errors:
        output = pid.step(error, 0.01)
        assert 0.0 <= output <= 1.0


@given(
    gain=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    error=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
)
def test_pid_proportional_term_is_linear(gain, error):
    pid = PIDController(PIDGains(kp=gain, ki=0.0, kd=0.0))
    assert pid.step(error, 0.01) == gain * error


# ----------------------------------------------------------------------
# Proportion estimator
# ----------------------------------------------------------------------


@given(
    pressures=st.lists(
        st.floats(min_value=-0.5, max_value=0.5, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=100)
def test_estimator_output_always_within_configured_bounds(pressures):
    config = ControllerConfig()
    estimator = ProportionEstimator(config)
    current = config.min_proportion_ppt
    for pressure in pressures:
        allocated = 10_000 * current // 1000
        usage = UsageSample(used_us=allocated, interval_us=10_000,
                            allocated_us=allocated)
        result = estimator.estimate(pressure, usage, current, 0.01)
        current = result.desired_ppt
        assert config.min_proportion_ppt <= current <= config.max_proportion_ppt


# ----------------------------------------------------------------------
# Analysis helpers
# ----------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=-1_000, max_value=1_000, allow_nan=False),
            st.floats(min_value=-1_000, max_value=1_000, allow_nan=False),
        ),
        min_size=3,
        max_size=50,
    )
)
def test_linear_fit_r_squared_in_unit_interval(points):
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    assume(max(xs) - min(xs) > 1e-6)
    fit = linear_fit(xs, ys)
    assert -1e-6 <= fit.r_squared <= 1.0 + 1e-6


@given(
    st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=2,
             max_size=50)
)
def test_rate_from_cumulative_of_nondecreasing_counter_is_nonnegative(increments):
    times = [float(i) for i in range(len(increments))]
    cumulative = []
    total = 0.0
    for inc in increments:
        total += inc
        cumulative.append(total)
    _, rates = rate_from_cumulative(times, cumulative)
    assert all(rate >= 0 for rate in rates)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=300),
       st.integers(min_value=1, max_value=120))
def test_sparkline_width_bounded(values, width):
    line = sparkline(values, width)
    assert 0 < len(line) <= width
