"""Unit tests for the CPU model and the tracer."""

import pytest

from repro.sim.cpu import CPUModel
from repro.sim.events import EventQueue
from repro.sim.trace import TracePoint, TraceSeries, Tracer


class TestCPUModel:
    def test_defaults_are_valid(self):
        cpu = CPUModel()
        assert cpu.clock_hz == pytest.approx(400e6)
        assert cpu.dispatch_cost_us > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CPUModel(clock_hz=0)
        with pytest.raises(ValueError):
            CPUModel(dispatch_cost_us=-1)
        with pytest.raises(ValueError):
            CPUModel(dispatch_cost_quadratic_us=-0.5)

    def test_cycles_to_us_round_trip(self):
        cpu = CPUModel(clock_hz=400e6)
        us = cpu.cycles_to_us(400_000)  # 1 ms worth of cycles
        assert us == 1_000
        assert cpu.us_to_cycles(1_000) == pytest.approx(400_000)

    def test_zero_cycles_is_zero_us(self):
        assert CPUModel().cycles_to_us(0) == 0

    def test_small_positive_cycles_at_least_one_us(self):
        assert CPUModel().cycles_to_us(1) == 1

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            CPUModel().cycles_to_us(-1)

    def test_effective_cost_constant_without_quadratic(self):
        cpu = CPUModel(dispatch_cost_us=5.0)
        assert cpu.effective_dispatch_cost_us(100) == pytest.approx(5.0)
        assert cpu.effective_dispatch_cost_us(10_000) == pytest.approx(5.0)

    def test_effective_cost_grows_with_quadratic_term(self):
        cpu = CPUModel(dispatch_cost_us=5.0, dispatch_cost_quadratic_us=0.1)
        assert cpu.effective_dispatch_cost_us(4_000) == pytest.approx(5.0 + 0.1 * 16)

    def test_overhead_fraction_monotonic_in_frequency(self):
        cpu = CPUModel(dispatch_cost_us=6.75)
        overheads = [cpu.overhead_fraction(f) for f in (100, 1_000, 4_000, 10_000)]
        assert overheads == sorted(overheads)
        assert all(0 <= o <= 1 for o in overheads)

    def test_overhead_fraction_matches_paper_calibration(self):
        cpu = CPUModel(dispatch_cost_us=6.75)
        assert cpu.overhead_fraction(4_000) == pytest.approx(0.027, rel=0.01)


class TestTraceSeries:
    def test_append_and_read(self):
        series = TraceSeries("s")
        series.append(0, 1.0)
        series.append(1_000, 2.0)
        assert series.values() == [1.0, 2.0]
        assert series.times() == [0, 1_000]
        assert series.times_s() == [0.0, 0.001]

    def test_out_of_order_append_rejected(self):
        series = TraceSeries("s")
        series.append(1_000, 1.0)
        with pytest.raises(ValueError):
            series.append(500, 2.0)

    def test_value_at_returns_most_recent(self):
        series = TraceSeries("s")
        series.append(0, 1.0)
        series.append(1_000, 2.0)
        series.append(2_000, 3.0)
        assert series.value_at(1_500) == 2.0
        assert series.value_at(2_000) == 3.0

    def test_value_at_before_first_sample_raises(self):
        series = TraceSeries("s")
        series.append(1_000, 1.0)
        with pytest.raises(ValueError):
            series.value_at(999)

    def test_window_selects_half_open_interval(self):
        series = TraceSeries("s")
        for t in range(0, 5_000, 1_000):
            series.append(t, float(t))
        window = series.window(1_000, 3_000)
        assert [p.time_us for p in window] == [1_000, 2_000]

    def test_mean(self):
        series = TraceSeries("s")
        series.append(0, 1.0)
        series.append(1, 3.0)
        assert series.mean() == 2.0
        assert TraceSeries("empty").mean() == 0.0

    def test_last(self):
        series = TraceSeries("s")
        assert series.last() is None
        series.append(5, 7.0)
        assert series.last() == TracePoint(5, 7.0)


class TestTracer:
    def test_record_creates_series(self):
        tracer = Tracer()
        tracer.record("x", 0, 1.0)
        assert "x" in tracer
        assert tracer.series("x").values() == [1.0]

    def test_names_in_creation_order(self):
        tracer = Tracer()
        tracer.record("b", 0, 1.0)
        tracer.record("a", 0, 1.0)
        assert tracer.names() == ["b", "a"]

    def test_sampler_records_periodically(self):
        tracer = Tracer()
        events = EventQueue()
        tracer.add_sampler(events, 100, "probe", lambda now: now * 2.0)
        # Drain events manually up to t=300.
        while (event := events.pop_due(300)) is not None:
            event.callback()
        assert tracer.series("probe").values() == [0.0, 200.0, 400.0, 600.0]

    def test_stop_samplers(self):
        tracer = Tracer()
        events = EventQueue()
        tracer.add_sampler(events, 100, "probe", lambda now: 1.0)
        tracer.stop_samplers()
        while (event := events.pop_due(1_000)) is not None:
            event.callback()
        # Only firings scheduled before stop (none, since first fire was
        # cancelled) appear.
        assert len(tracer.series("probe")) == 0
