"""Differential tests: run-to-horizon engine vs the quantum-sliced oracle.

The run-to-horizon engine (``Kernel(engine="horizon")``, the default)
may only skip machinery — event polls, picks, placement rounds — whose
re-execution is provably a no-op.  Everything observable must stay
**bit-identical** to the original quantum-sliced loop, which is kept in
the kernel as ``engine="quantum"`` exactly for this purpose:

* the full dispatch log — every ``(time, cpu, thread, outcome,
  consumed)`` tuple, in order;
* trace fingerprints (controller allocations, pressures, samplers);
* per-thread accounting and per-CPU idle/stolen/dispatch totals;
* deadline-miss counts of the reservation scheduler;
* the conservation identity
  ``total_thread_cpu + idle + stolen == n_cpus * now``.

Hypothesis drives randomized workloads — compute hogs, sleepers,
simulated I/O, producer/consumer pairs over bounded buffers, exiting
threads, reservation churn — on 1 and 4 CPUs, through both engines,
and compares everything.  The baseline schedulers (round-robin,
priority, lottery, goodness) get their own differential runs because
their batching replays pick-time state (cursors, RNG draws) that the
reservation scheduler does not exercise.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sched.goodness import LinuxGoodnessScheduler
from repro.sched.lottery import LotteryScheduler
from repro.sched.priority import FixedPriorityScheduler
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, Sleep, WaitIO, Yield
from repro.system import build_real_rate_system
from repro.workloads.cpu_hog import CpuHog
from repro.workloads.webserver import WebServer


# ----------------------------------------------------------------------
# deterministic thread bodies
# ----------------------------------------------------------------------
def hog_body(burst_us):
    def body(env):
        while True:
            yield Compute(burst_us)

    return body


def sleeper_body(burst_us, sleep_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(sleep_us)

    return body


def io_body(burst_us, latency_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield WaitIO(latency_us, tag="disk")

    return body


def yielder_body(burst_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Yield()

    return body


def finite_body(burst_us, repeats):
    def body(env):
        for _ in range(repeats):
            yield Compute(burst_us)

    return body


def producer_body(channel, burst_us, nbytes):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Put(channel, nbytes)

    return body


def consumer_body(channel, burst_us, nbytes):
    def body(env):
        while True:
            yield Get(channel, nbytes)
            yield Compute(burst_us)

    return body


# ----------------------------------------------------------------------
# observation and comparison
# ----------------------------------------------------------------------
def observe(kernel, scheduler=None):
    """Everything the engines must agree on, as one comparable tuple."""
    accounting = {
        t.name: (
            t.accounting.total_us,
            t.accounting.dispatches,
            t.accounting.preemptions,
            t.accounting.voluntary_switches,
            t.accounting.blocks,
            t.accounting.sleeps,
            t.state.value,
        )
        for t in kernel.threads
    }
    totals = (
        kernel.now,
        kernel.idle_us,
        kernel.stolen_dispatch_us,
        kernel.stolen_controller_us,
        kernel.dispatch_count,
        tuple(
            (c.idle_us, c.stolen_dispatch_us, c.dispatches)
            for c in kernel.cpu_states
        ),
    )
    misses = (
        scheduler.deadline_misses()
        if isinstance(scheduler, ReservationScheduler)
        else None
    )
    return (
        kernel.tracer.fingerprint(),
        tuple(kernel.dispatch_log),
        accounting,
        totals,
        misses,
    )


def assert_conserved(kernel):
    assert (
        kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
        == kernel.capacity_us()
    ), "conservation identity violated"


def assert_engines_agree(build, duration_us):
    """Run ``build(engine)`` under both engines and compare everything."""
    observations = {}
    for engine in ("quantum", "horizon"):
        kernel, scheduler = build(engine)
        kernel.run_for(duration_us)
        assert_conserved(kernel)
        observations[engine] = observe(kernel, scheduler)
    quantum, horizon = observations["quantum"], observations["horizon"]
    assert horizon[0] == quantum[0], "trace fingerprints diverged"
    if horizon[1] != quantum[1]:
        for index, (h, q) in enumerate(zip(horizon[1], quantum[1])):
            assert h == q, f"dispatch log diverged at entry {index}: {h} != {q}"
        assert len(horizon[1]) == len(quantum[1]), "dispatch log length diverged"
    assert horizon[2] == quantum[2], "per-thread accounting diverged"
    assert horizon[3] == quantum[3], "kernel totals diverged"
    assert horizon[4] == quantum[4], "deadline misses diverged"


# ----------------------------------------------------------------------
# randomized RBS workloads (the default substrate)
# ----------------------------------------------------------------------
thread_specs = st.lists(
    st.tuples(
        st.sampled_from(["hog", "sleeper", "io", "yielder", "finite"]),
        st.integers(min_value=50, max_value=7_000),    # burst
        st.integers(min_value=100, max_value=20_000),  # sleep/latency/repeats
        # Reservation: None (best effort) or (ppt, period).
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=10, max_value=600),
                st.sampled_from([5_000, 10_000, 20_000, 30_000]),
            ),
        ),
    ),
    min_size=1,
    max_size=6,
)


@pytest.mark.parametrize("n_cpus", [1, 4])
@settings(max_examples=20, deadline=None)
@given(specs=thread_specs, pairs=st.integers(min_value=0, max_value=2))
def test_rbs_workloads_bit_identical(n_cpus, specs, pairs):
    def build(engine):
        scheduler = ReservationScheduler()
        kernel = Kernel(
            scheduler, n_cpus=n_cpus, record_dispatches=True, engine=engine
        )
        for index, (kind, burst, aux, reservation) in enumerate(specs):
            if kind == "hog":
                body = hog_body(burst)
            elif kind == "sleeper":
                body = sleeper_body(burst, aux)
            elif kind == "io":
                body = io_body(burst, aux)
            elif kind == "yielder":
                body = yielder_body(burst)
            else:
                body = finite_body(burst, max(1, aux // 1_000))
            thread = kernel.spawn(f"t{index}.{kind}", body)
            if reservation is not None:
                scheduler.set_reservation(thread, *reservation)
        for pair in range(pairs):
            channel = BoundedBuffer(f"q{pair}", 4_096)
            producer = kernel.spawn(
                f"p{pair}", producer_body(channel, 300 + 137 * pair, 512)
            )
            kernel.spawn(f"c{pair}", consumer_body(channel, 900, 512))
            scheduler.set_reservation(producer, 100, 10_000)
        return kernel, scheduler

    assert_engines_agree(build, 120_000)


# ----------------------------------------------------------------------
# controller churn (actuation every tick, squishing, replenishments)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_cpus", [1, 4])
@settings(max_examples=8, deadline=None)
@given(
    n_hogs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16),
    rps=st.sampled_from([120.0, 250.0, 400.0]),
)
def test_controller_churn_bit_identical(n_cpus, n_hogs, seed, rps):
    def build(engine):
        system = build_real_rate_system(
            n_cpus=n_cpus, record_dispatches=True, engine=engine
        )
        WebServer.attach(
            system, requests_per_second=rps, service_cpu_us=1_100, seed=seed
        )
        for index in range(n_hogs):
            CpuHog.attach(
                system,
                name=f"hog{index}",
                burst_us=2_000 + 500 * index,
                seed=seed + index,
            )
        return system.kernel, system.scheduler

    assert_engines_agree(build, 150_000)


# ----------------------------------------------------------------------
# baseline schedulers: cursor / RNG / counter replay under batching
# ----------------------------------------------------------------------
def _baseline_schedulers():
    return [
        ("round_robin", lambda: RoundRobinScheduler()),
        ("priority", lambda: FixedPriorityScheduler()),
        ("priority_pi", lambda: FixedPriorityScheduler(priority_inheritance=True)),
        ("lottery", lambda: LotteryScheduler(seed=7)),
        ("goodness", lambda: LinuxGoodnessScheduler()),
    ]


@pytest.mark.parametrize("name,factory", _baseline_schedulers())
@settings(max_examples=10, deadline=None)
@given(
    burst=st.integers(min_value=200, max_value=6_000),
    sleep_us=st.integers(min_value=500, max_value=15_000),
    extra_priority=st.integers(min_value=-3, max_value=3),
)
def test_baseline_schedulers_bit_identical(name, factory, burst, sleep_us,
                                           extra_priority):
    """Sole-runnable stretches engage batching; wake-ups then make the
    replayed cursor parity / RNG stream / goodness counters observable
    in the subsequent multi-candidate picks."""

    def build(engine):
        scheduler = factory()
        kernel = Kernel(scheduler, record_dispatches=True, engine=engine)
        kernel.spawn("hog", hog_body(burst), priority=1, nice=0, tickets=150)
        kernel.spawn(
            "sleeper",
            sleeper_body(burst // 2 + 1, sleep_us),
            priority=1 + extra_priority,
            nice=5,
            tickets=50,
        )
        kernel.spawn("finite", finite_body(burst, 3), priority=1, tickets=25)
        return kernel, scheduler

    assert_engines_agree(build, 100_000)


def test_engine_parameter_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        Kernel(RoundRobinScheduler(), engine="warp")


def test_default_engine_is_horizon():
    kernel = Kernel(RoundRobinScheduler())
    assert kernel.engine == "horizon"
    oracle = Kernel(RoundRobinScheduler(), engine="quantum")
    assert oracle.engine == "quantum"


# ----------------------------------------------------------------------
# conservation identity under event-driven advancement
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_cpus", [1, 4])
@settings(max_examples=15, deadline=None)
@given(
    specs=thread_specs,
    checkpoints=st.lists(
        st.integers(min_value=1_000, max_value=60_000), min_size=1, max_size=4
    ),
)
def test_conservation_holds_at_every_checkpoint(n_cpus, specs, checkpoints):
    """The identity must hold at arbitrary stopping points, not just at
    the end of a run — the horizon engine's batches and idle jumps must
    never smear time across a ``run_until`` boundary."""
    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler, n_cpus=n_cpus, engine="horizon")
    for index, (kind, burst, aux, reservation) in enumerate(specs):
        if kind == "hog":
            body = hog_body(burst)
        elif kind == "sleeper":
            body = sleeper_body(burst, aux)
        elif kind == "io":
            body = io_body(burst, aux)
        elif kind == "yielder":
            body = yielder_body(burst)
        else:
            body = finite_body(burst, max(1, aux // 1_000))
        thread = kernel.spawn(f"t{index}.{kind}", body)
        if reservation is not None:
            scheduler.set_reservation(thread, *reservation)
    for step in checkpoints:
        kernel.run_for(step)
        assert_conserved(kernel)
