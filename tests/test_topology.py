"""CPU topology model, topology-aware placement and migration accounting.

Covers the :class:`~repro.sim.topology.CpuTopology` model itself, the
three topology-aware placement policies, the placement edge-case fixes
(empty online set, out-of-range affinity, the unified offline-pin
fallback), migration counting and virtual-time penalty charging in the
kernel, and the engine-equivalence / byte-identity guarantees the
``topology_placement`` experiment rides on.
"""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.registry import SymbioticRegistry
from repro.sched.placement import (
    CacheWarmPlacement,
    LeastLoadedPlacement,
    NumaPackPlacement,
    PinnedPlacement,
    PipelineAffinityPlacement,
    pipeline_pairs,
)
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import SchedulerError
from repro.sim.kernel import Kernel
from repro.sim.thread import SimThread
from repro.sim.topology import (
    CROSS_SOCKET,
    SAME_CPU,
    SAME_SOCKET,
    SMT_SIBLING,
    CpuTopology,
)
from repro.workloads.engine import dispatch_fingerprint

from tests.conftest import finite_body, spin_body

#: Placement policy factories taking the CPU count, used by the shared
#: contract tests (every policy must obey the same offline/validation
#: rules).
def _all_policies(n_cpus):
    topo = CpuTopology.from_spec(f"1x{n_cpus}x1")
    return {
        "least_loaded": LeastLoadedPlacement(),
        "pinned": PinnedPlacement(),
        "cache_warm": CacheWarmPlacement(topo),
        "numa_pack": NumaPackPlacement(topo),
        "pipeline": PipelineAffinityPlacement(topo),
    }


def make_kernel(n_cpus, scheduler=None, **kwargs):
    return Kernel(
        scheduler if scheduler is not None else RoundRobinScheduler(),
        n_cpus=n_cpus,
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
        **kwargs,
    )


class TestCpuTopology:
    def test_layout_is_socket_major(self):
        topo = CpuTopology(sockets=2, cores_per_socket=2, threads_per_core=2)
        assert topo.n_cpus == 8
        assert [topo.socket_of(i) for i in range(8)] == [0] * 4 + [1] * 4
        # Global core ids: CPUs 0,1 share core 0; 2,3 core 1; etc.
        assert [topo.core_of(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert topo.siblings(0) == (0, 1)
        assert topo.siblings(5) == (4, 5)
        assert topo.cpus_of_socket(1) == (4, 5, 6, 7)

    def test_from_spec_and_spec_round_trip(self):
        assert CpuTopology.from_spec("2x4x2").spec() == "2x4x2"
        assert CpuTopology.from_spec("2x4").spec() == "2x4x1"
        assert CpuTopology.from_spec("8").spec() == "1x8x1"
        assert CpuTopology.from_spec("8").n_cpus == 8

    def test_from_spec_rejects_garbage(self):
        for bad in ("", "2x", "0x2x2", "2x2x2x2", "ax2"):
            with pytest.raises(ValueError):
                CpuTopology.from_spec(bad)

    def test_distance_classes(self):
        topo = CpuTopology(sockets=2, cores_per_socket=2, threads_per_core=2)
        assert topo.distance_class(3, 3) == SAME_CPU
        assert topo.distance_class(2, 3) == SMT_SIBLING
        assert topo.distance_class(0, 3) == SAME_SOCKET
        assert topo.distance_class(0, 7) == CROSS_SOCKET

    def test_migration_penalties_by_domain(self):
        topo = CpuTopology(
            sockets=2, cores_per_socket=2, threads_per_core=2,
            smt_migration_us=10, core_migration_us=50,
            socket_migration_us=200,
        )
        assert topo.migration_penalty_us(1, 1) == 0
        assert topo.migration_penalty_us(0, 1) == 10
        assert topo.migration_penalty_us(0, 2) == 50
        assert topo.migration_penalty_us(0, 5) == 200

    def test_rejects_invalid_dimensions_and_penalties(self):
        with pytest.raises(ValueError):
            CpuTopology(sockets=0, cores_per_socket=1, threads_per_core=1)
        with pytest.raises(ValueError):
            CpuTopology(sockets=1, cores_per_socket=1, threads_per_core=1,
                        smt_migration_us=-1)
        topo = CpuTopology.from_spec("2x2")
        with pytest.raises(ValueError):
            topo.socket_of(4)
        with pytest.raises(ValueError):
            topo.distance_class(0, 99)


class TestCacheWarmPlacement:
    def _threads(self, n):
        return [SimThread(f"t{i}") for i in range(n)]

    def test_prefers_last_cpu(self):
        topo = CpuTopology.from_spec("2x2x2")
        threads = self._threads(2)
        threads[0].last_cpu = 6
        threads[1].last_cpu = 3
        mapping = CacheWarmPlacement(topo).assign(threads, 8, lambda t: 1.0)
        assert mapping[threads[0].tid] == 6
        assert mapping[threads[1].tid] == 3

    def test_prefers_sibling_when_last_cpu_offline(self):
        topo = CpuTopology.from_spec("2x2x2")
        threads = self._threads(1)
        threads[0].last_cpu = 6
        online = (0, 1, 2, 3, 4, 5, 7)  # 6 down; 7 is its SMT sibling
        mapping = CacheWarmPlacement(topo).assign(
            threads, 8, lambda t: 1.0, online=online
        )
        assert mapping[threads[0].tid] == 7

    def test_prefers_same_socket_over_remote(self):
        topo = CpuTopology.from_spec("2x2x1")
        threads = self._threads(1)
        threads[0].last_cpu = 1
        online = (0, 2, 3)  # core 1 (socket 0) down entirely
        mapping = CacheWarmPlacement(topo).assign(
            threads, 4, lambda t: 1.0, online=online
        )
        assert mapping[threads[0].tid] == 0  # same socket beats 2/3

    def test_never_dispatched_degenerates_to_least_loaded(self):
        topo = CpuTopology.from_spec("1x4x1")
        threads = self._threads(4)
        warm = CacheWarmPlacement(topo).assign(threads, 4, lambda t: 1.0)
        flat = LeastLoadedPlacement().assign(threads, 4, lambda t: 1.0)
        assert warm == flat

    def test_stable_under_self_application(self):
        # Re-running assign after threads "ran" where they were placed
        # must reproduce the identical map (the horizon engine caches
        # it; the quantum oracle recomputes it every round).
        topo = CpuTopology.from_spec(
            "2x2x2"
        )
        threads = self._threads(5)
        threads[2].last_cpu = 5
        policy = CacheWarmPlacement(topo)
        first = policy.assign(threads, 8, lambda t: 1.0)
        for thread in threads:
            thread.last_cpu = first[thread.tid]
        assert policy.assign(threads, 8, lambda t: 1.0) == first

    def test_rejects_mismatched_topology(self):
        topo = CpuTopology.from_spec("1x2x1")
        with pytest.raises(SchedulerError):
            CacheWarmPlacement(topo).assign(self._threads(1), 4, lambda t: 1.0)


class TestNumaPackPlacement:
    def test_groups_pack_socket_local(self):
        topo = CpuTopology.from_spec("2x2x1")
        threads = [
            SimThread("web.0"), SimThread("web.1"),
            SimThread("db.0"), SimThread("db.1"),
        ]
        mapping = NumaPackPlacement(topo).assign(threads, 4, lambda t: 1.0)
        web = {topo.socket_of(mapping[t.tid]) for t in threads[:2]}
        db = {topo.socket_of(mapping[t.tid]) for t in threads[2:]}
        assert len(web) == 1 and len(db) == 1
        assert web != db  # two equal-weight groups, one socket each

    def test_heavier_group_placed_first_and_spread_within_socket(self):
        topo = CpuTopology.from_spec("2x2x1")
        threads = [SimThread("big.0"), SimThread("big.1"), SimThread("tiny.0")]
        weights = {threads[0].tid: 9.0, threads[1].tid: 9.0,
                   threads[2].tid: 1.0}
        mapping = NumaPackPlacement(topo).assign(
            threads, 4, lambda t: weights[t.tid]
        )
        # The big group lands on socket 0 (tie broken low) on distinct
        # CPUs; tiny takes the other socket.
        big_cpus = {mapping[threads[0].tid], mapping[threads[1].tid]}
        assert big_cpus == {0, 1}
        assert topo.socket_of(mapping[threads[2].tid]) == 1

    def test_skips_fully_offline_socket(self):
        topo = CpuTopology.from_spec("2x2x1")
        threads = [SimThread("grp.0"), SimThread("grp.1")]
        mapping = NumaPackPlacement(topo).assign(
            threads, 4, lambda t: 1.0, online=(2, 3)
        )
        assert {mapping[t.tid] for t in threads} == {2, 3}


class TestPipelineAffinityPlacement:
    def test_pair_lands_on_smt_siblings(self):
        topo = CpuTopology.from_spec("1x2x2")
        producer = SimThread("stage.produce")
        consumer = SimThread("stage.consume")
        other = SimThread("noise")
        policy = PipelineAffinityPlacement(
            topo, pairs=[("stage.produce", "stage.consume")]
        )
        mapping = policy.assign([producer, consumer, other], 4, lambda t: 1.0)
        assert topo.core_of(mapping[producer.tid]) == topo.core_of(
            mapping[consumer.tid]
        )
        assert mapping[producer.tid] != mapping[consumer.tid]

    def test_pair_shares_cpu_on_single_thread_core(self):
        topo = CpuTopology.from_spec("1x2x1")
        producer = SimThread("p")
        consumer = SimThread("c")
        policy = PipelineAffinityPlacement(topo, pairs=[("p", "c")])
        mapping = policy.assign([producer, consumer], 2, lambda t: 1.0)
        assert mapping[producer.tid] == mapping[consumer.tid]

    def test_unpaired_threads_balance(self):
        topo = CpuTopology.from_spec("1x2x1")
        threads = [SimThread(f"solo{i}") for i in range(2)]
        mapping = PipelineAffinityPlacement(topo).assign(
            threads, 2, lambda t: 1.0
        )
        assert sorted(mapping.values()) == [0, 1]

    def test_pipeline_pairs_from_registry(self):
        registry = SymbioticRegistry()
        queue = BoundedBuffer("frames", 4_096)
        producer = SimThread("pipe.decode")
        consumer = SimThread("pipe.render")
        registry.register_pair(producer, consumer, queue)
        assert pipeline_pairs(registry) == (("pipe.decode", "pipe.render"),)


class TestPlacementEdgeCases:
    """The satellite fixes: one shared contract for every policy."""

    @pytest.mark.parametrize("name", sorted(_all_policies(2)))
    def test_empty_online_set_raises(self, name):
        policy = _all_policies(2)[name]
        threads = [SimThread("t")]
        with pytest.raises(SchedulerError):
            policy.assign(threads, 2, lambda t: 1.0, online=())

    @pytest.mark.parametrize("name", sorted(_all_policies(2)))
    def test_out_of_range_affinity_raises(self, name):
        policy = _all_policies(2)[name]
        thread = SimThread("t")
        thread.affinity = 5  # bypass pin_to validation: corrupted state
        with pytest.raises(SchedulerError):
            policy.assign([thread], 2, lambda t: 1.0)

    @pytest.mark.parametrize("name", sorted(_all_policies(4)))
    def test_offline_pin_falls_back_to_lowest_online(self, name):
        # The unified rule: an offline pin maps to the lowest-numbered
        # online CPU — exactly where Kernel.fail_cpu drains pins to.
        policy = _all_policies(4)[name]
        thread = SimThread("t")
        thread.affinity = 2
        mapping = policy.assign([thread], 4, lambda t: 1.0, online=(1, 3))
        assert mapping[thread.tid] == 1

    def test_fallback_matches_kernel_drain_target(self):
        kernel = make_kernel(4)
        pinned = kernel.spawn("pinned", spin_body())
        pinned.pin_to(2)
        kernel.run_for(1_000)
        drained = kernel.fail_cpu(2)
        assert pinned in drained
        # The kernel drains to the lowest-numbered online CPU; the
        # placement fallback (exercised when a policy sees a stale
        # offline pin) must agree with it.
        assert pinned.affinity == kernel.online_cpu_indices()[0]

    def test_allowed_cpus_helper_removed(self):
        from repro.sched.placement import PlacementPolicy

        assert not hasattr(PlacementPolicy, "_allowed_cpus")


class TestKernelTopology:
    def test_n_cpus_inferred_from_topology(self):
        topo = CpuTopology.from_spec("2x2x1")
        kernel = make_kernel(1, topology=topo)
        assert kernel.n_cpus == 4

    def test_mismatched_n_cpus_rejected(self):
        topo = CpuTopology.from_spec("2x2x1")
        with pytest.raises(ValueError):
            make_kernel(8, topology=topo)

    def test_migrations_counted_without_topology(self):
        # Plain SMP kernels count cross-CPU moves too (no penalty).
        kernel = make_kernel(2)
        a = kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        kernel.run_for(5_000)
        a.pin_to(1 - a.last_cpu)  # force one migration
        kernel.run_for(5_000)
        assert kernel.migrations >= 1
        assert kernel.migration_us == 0

    def test_penalty_charged_and_conserved(self):
        topo = CpuTopology(
            sockets=2, cores_per_socket=1, threads_per_core=1,
            socket_migration_us=150,
        )
        kernel = make_kernel(2, topology=topo)
        a = kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        kernel.run_for(5_000)
        a.pin_to(1 - a.last_cpu)
        kernel.run_for(5_000)
        assert kernel.migrations >= 1
        assert kernel.migration_us >= 150
        # Migration time is stolen: the conservation identity extends.
        total = sum(t.accounting.total_us for t in kernel.threads)
        assert (
            total + kernel.idle_us + kernel.stolen_us + kernel.offline_us
            == kernel.n_cpus * kernel.now
        )
        assert kernel.migration_us == sum(
            c.migration_us for c in kernel.cpu_states
        )

    def test_zero_penalty_flat_run_is_byte_identical(self):
        # Acceptance criterion: with all penalties 0, a topology kernel
        # under the flat policy produces the exact dispatch log of an
        # untopologised kernel.
        def run(topology):
            kernel = Kernel(
                ReservationScheduler(),
                n_cpus=4,
                topology=topology,
                record_dispatches=True,
            )
            threads = [
                kernel.spawn(f"t{i}", finite_body(20_000)) for i in range(6)
            ]
            kernel.scheduler.set_reservation(threads[0], 200, 10_000)
            kernel.run_for(60_000)
            return kernel

        plain = run(None)
        topo = run(CpuTopology.from_spec("2x2x1"))
        assert plain.dispatch_log == topo.dispatch_log
        assert dispatch_fingerprint(plain) == dispatch_fingerprint(topo)

    @pytest.mark.parametrize("placement", ["cache_warm", "numa_pack"])
    def test_engines_agree_with_penalties(self, placement):
        topo = CpuTopology(
            sockets=2, cores_per_socket=1, threads_per_core=2,
            smt_migration_us=25, core_migration_us=80,
            socket_migration_us=200,
        )

        def run(engine):
            scheduler = ReservationScheduler()
            scheduler.placement = (
                CacheWarmPlacement(topo) if placement == "cache_warm"
                else NumaPackPlacement(topo)
            )
            kernel = Kernel(
                scheduler, n_cpus=4, topology=topo,
                record_dispatches=True, engine=engine,
            )
            threads = [
                kernel.spawn(f"grp{i % 2}.{i}", finite_body(30_000))
                for i in range(6)
            ]
            scheduler.set_reservation(threads[0], 200, 10_000)
            kernel.events.schedule(
                20_000, lambda: threads[1].pin_to(3), label="test.pin"
            )
            kernel.events.schedule(
                40_000, lambda: threads[1].pin_to(None), label="test.unpin"
            )
            kernel.run_for(80_000)
            return kernel

        quantum = run("quantum")
        horizon = run("horizon")
        assert dispatch_fingerprint(quantum) == dispatch_fingerprint(horizon)
        assert quantum.migrations == horizon.migrations
        assert quantum.migration_us == horizon.migration_us

    def test_penalised_dispatch_log_entries_carry_cost(self):
        topo = CpuTopology(
            sockets=2, cores_per_socket=1, threads_per_core=1,
            socket_migration_us=120,
        )
        kernel = Kernel(
            RoundRobinScheduler(), n_cpus=2, topology=topo,
            record_dispatches=True, charge_dispatch_overhead=False,
            syscall_cost_us=0,
        )
        a = kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        kernel.run_for(5_000)
        a.pin_to(1 - a.last_cpu)
        kernel.run_for(5_000)
        penalised = [e for e in kernel.dispatch_log if len(e) == 6]
        assert penalised
        assert all(entry[5] == 120 for entry in penalised)


class TestTopologyExperiment:
    def test_quick_run_engines_agree(self):
        from repro.experiments.topology import topology_placement_experiment

        results = {
            engine: topology_placement_experiment(
                duration_s=0.2, engine=engine
            )
            for engine in ("quantum", "horizon")
        }
        prints = {
            engine: result.metadata["dispatch_fingerprint"]
            for engine, result in results.items()
        }
        assert prints["quantum"] == prints["horizon"]
        result = results["horizon"]
        assert result.metrics["conservation_ok_flat"] == 1.0
        assert result.metrics["conservation_ok_aware"] == 1.0
        assert (
            result.metrics["migration_ms_aware"]
            <= result.metrics["migration_ms_flat"]
        )

    def test_numa_pack_variant_runs(self):
        from repro.experiments.topology import topology_placement_experiment

        result = topology_placement_experiment(
            duration_s=0.1, placement="numa_pack"
        )
        assert result.metadata["aware_placement"] == "numa_pack"
        assert result.metrics["conservation_ok_aware"] == 1.0
