"""Unit tests for the SLO-driven second-level reservation controller."""

from __future__ import annotations

import pytest

from repro.core.taxonomy import ThreadSpec
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.swift.slo import SLOController, SLOPolicy
from repro.workloads.arrivals import DeterministicArrivals
from repro.workloads.engine import JobStream, JobTemplate


def _stream(records_us, *, outcome="completed"):
    """A bare JobStream carrying synthetic completion records."""
    stream = JobStream(
        name="s",
        template=JobTemplate("j"),
        arrivals=DeterministicArrivals(1_000),
    )
    for i, sojourn in enumerate(records_us):
        stream._finish(i, "j", 0, sojourn, outcome)
    return stream


def _controller(records_us, policy, **kwargs):
    kernel = Kernel(ReservationScheduler())
    spec = ThreadSpec(proportion_ppt=policy.min_ppt * 2, period_us=10_000)
    stream = _stream(records_us)
    controller = SLOController(kernel, stream, spec, policy, **kwargs)
    return kernel, spec, stream, controller


class TestSLOPolicy:
    def test_defaults_are_valid(self):
        policy = SLOPolicy(target_us=40_000.0)
        assert policy.percentile == 99.0
        assert policy.step_up_ppt >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_us": 0.0},
            {"target_us": 1.0, "percentile": 0},
            {"target_us": 1.0, "percentile": 101},
            {"target_us": 1.0, "window": 0},
            {"target_us": 1.0, "min_ppt": 0},
            {"target_us": 1.0, "min_ppt": 50, "max_ppt": 40},
            {"target_us": 1.0, "step_up_ppt": 0},
            {"target_us": 1.0, "decay": 0.0},
            {"target_us": 1.0, "decay": 1.5},
            {"target_us": 1.0, "headroom": 0.0},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOPolicy(**kwargs)


class TestSLOController:
    def test_requires_a_proportion_spec(self):
        kernel = Kernel(ReservationScheduler())
        with pytest.raises(ValueError, match="proportion"):
            SLOController(
                kernel, _stream([]), ThreadSpec(),
                SLOPolicy(target_us=1_000.0),
            )

    def test_observed_tail_is_windowed_exact_rank(self):
        policy = SLOPolicy(target_us=1_000.0, window=4)
        _, _, _, controller = _controller(
            [10, 20, 30, 100, 200, 300, 400], policy
        )
        # Only the last 4 completions (100..400) are in the window;
        # exact-rank p99 of 4 samples is the maximum.
        assert controller.observed_tail_us() == 400.0

    def test_observed_tail_ignores_non_completions(self):
        policy = SLOPolicy(target_us=1_000.0, window=8)
        kernel = Kernel(ReservationScheduler())
        spec = ThreadSpec(proportion_ppt=50, period_us=10_000)
        stream = _stream([100, 200])
        stream._finish(9, "j", 0, 9_999, "killed")
        stream._finish(10, "j", 0, 0, "rejected")
        controller = SLOController(kernel, stream, spec, policy)
        assert controller.observed_tail_us() == 200.0

    def test_observed_tail_none_before_first_completion(self):
        policy = SLOPolicy(target_us=1_000.0)
        _, _, _, controller = _controller([], policy)
        assert controller.observed_tail_us() is None

    def test_additive_increase_on_violation(self):
        policy = SLOPolicy(target_us=1_000.0, step_up_ppt=15, max_ppt=100)
        kernel, spec, _, controller = _controller([5_000], policy)
        before = spec.proportion_ppt
        kernel.run_for(60_000)  # two 50 ms default periods: ticks at 0 and 50 ms
        assert controller.violations > 0
        assert spec.proportion_ppt > before
        # Additive: each violating tick adds exactly step_up_ppt.
        grown = spec.proportion_ppt - before
        assert grown % policy.step_up_ppt == 0
        assert controller.adjustments
        now, observed, new_ppt = controller.adjustments[0]
        assert observed == 5_000.0
        assert new_ppt == before + policy.step_up_ppt

    def test_increase_clamps_at_max_ppt(self):
        policy = SLOPolicy(target_us=1_000.0, step_up_ppt=400, max_ppt=60,
                           min_ppt=10)
        kernel, spec, _, controller = _controller([5_000], policy)
        kernel.run_for(200_000)
        assert spec.proportion_ppt == policy.max_ppt

    def test_multiplicative_decrease_below_headroom(self):
        policy = SLOPolicy(target_us=100_000.0, decay=0.5, min_ppt=10,
                           headroom=0.6)
        kernel, spec, _, controller = _controller([1_000], policy)
        before = spec.proportion_ppt
        kernel.run_for(1_000)
        assert spec.proportion_ppt == max(policy.min_ppt, int(before * 0.5))

    def test_dead_band_holds_allocation(self):
        # Observed 80% of target: above headroom (60%), below target.
        policy = SLOPolicy(target_us=10_000.0, headroom=0.6)
        kernel, spec, _, controller = _controller([8_000], policy)
        before = spec.proportion_ppt
        kernel.run_for(200_000)
        assert spec.proportion_ppt == before
        assert controller.adjustments == []
        assert controller.violations == 0
        assert controller.invocations > 0

    def test_stop_halts_ticking(self):
        policy = SLOPolicy(target_us=1_000.0)
        kernel, spec, _, controller = _controller([5_000], policy)
        kernel.run_for(1_000)
        ticked = controller.invocations
        controller.stop()
        kernel.run_for(500_000)
        assert controller.invocations == ticked

    def test_traces_ppt_and_tail_series(self):
        policy = SLOPolicy(target_us=1_000.0)
        kernel, spec, _, controller = _controller([5_000], policy)
        kernel.run_for(60_000)
        assert len(kernel.tracer.series("slo:ppt")) > 0
        assert len(kernel.tracer.series("slo:tail_us")) > 0
