"""Unit tests for progress and usage monitoring."""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.registry import SymbioticRegistry
from repro.ipc.roles import Role
from repro.monitor.progress import (
    ConstantPressureSource,
    ProgressSampler,
    QueueFillMonitor,
)
from repro.monitor.usage import UsageMonitor
from repro.sim.thread import SimThread


class TestQueueFillMonitor:
    def _make(self, role, fill, capacity=1_000, setpoint=0.5):
        registry = SymbioticRegistry()
        thread = SimThread("t")
        queue = BoundedBuffer("q", capacity)
        if fill:
            queue.commit_put(fill)
        linkage = registry.register(thread, queue, role)
        return QueueFillMonitor(linkage, setpoint=setpoint)

    def test_half_full_queue_has_zero_pressure(self):
        monitor = self._make(Role.CONSUMER, 500)
        assert monitor.signed_pressure() == pytest.approx(0.0)

    def test_full_queue_pushes_consumer_up(self):
        monitor = self._make(Role.CONSUMER, 1_000)
        assert monitor.signed_pressure() == pytest.approx(0.5)

    def test_full_queue_pushes_producer_down(self):
        monitor = self._make(Role.PRODUCER, 1_000)
        assert monitor.signed_pressure() == pytest.approx(-0.5)

    def test_empty_queue_pushes_consumer_down(self):
        monitor = self._make(Role.CONSUMER, 0)
        assert monitor.signed_pressure() == pytest.approx(-0.5)

    def test_empty_queue_pushes_producer_up(self):
        monitor = self._make(Role.PRODUCER, 0)
        assert monitor.signed_pressure() == pytest.approx(0.5)

    def test_pressure_bounded_by_half(self):
        for fill in (0, 100, 250, 500, 750, 999, 1_000):
            monitor = self._make(Role.CONSUMER, fill)
            assert -0.5 <= monitor.signed_pressure() <= 0.5

    def test_custom_setpoint(self):
        monitor = self._make(Role.CONSUMER, 250, setpoint=0.25)
        assert monitor.signed_pressure() == pytest.approx(0.0)

    def test_invalid_setpoint_rejected(self):
        with pytest.raises(ValueError):
            self._make(Role.CONSUMER, 0, setpoint=1.0)


class TestConstantPressureSource:
    def test_positive_constant(self):
        source = ConstantPressureSource(0.3)
        assert source.sample().raw == 0.3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ConstantPressureSource(0.0)


class TestProgressSampler:
    def test_no_linkages_returns_none(self):
        registry = SymbioticRegistry()
        sampler = ProgressSampler(SimThread("t"), registry)
        assert sampler.sample() is None

    def test_sums_over_multiple_queues(self):
        registry = SymbioticRegistry()
        thread = SimThread("stage")
        inbound = BoundedBuffer("in", 1_000)
        outbound = BoundedBuffer("out", 1_000)
        inbound.commit_put(1_000)   # full input: need more CPU (+0.5)
        outbound.commit_put(1_000)  # full output: slow down (-0.5)
        registry.register(thread, inbound, Role.CONSUMER)
        registry.register(thread, outbound, Role.PRODUCER)
        sample = ProgressSampler(thread, registry).sample()
        assert sample.raw == pytest.approx(0.0)
        assert sample.per_channel["in"] == pytest.approx(0.5)
        assert sample.per_channel["out"] == pytest.approx(-0.5)
        assert sample.saturated_full

    def test_saturation_flags(self):
        registry = SymbioticRegistry()
        thread = SimThread("c")
        queue = BoundedBuffer("q", 100)
        registry.register(thread, queue, Role.CONSUMER)
        sampler = ProgressSampler(thread, registry)
        assert sampler.sample().saturated_empty
        queue.commit_put(100)
        assert sampler.sample().saturated_full

    def test_new_linkages_picked_up(self):
        registry = SymbioticRegistry()
        thread = SimThread("t")
        sampler = ProgressSampler(thread, registry)
        assert sampler.sample() is None
        registry.register(thread, BoundedBuffer("q", 100), Role.CONSUMER)
        assert sampler.sample() is not None


class TestUsageMonitor:
    def test_first_sample_has_zero_interval(self):
        monitor = UsageMonitor()
        thread = SimThread("t")
        sample = monitor.sample(thread, now=10_000, allocated_ppt=100)
        assert sample.used_us == 0
        assert sample.interval_us == 0

    def test_delta_accounting(self):
        monitor = UsageMonitor()
        thread = SimThread("t")
        monitor.sample(thread, now=0, allocated_ppt=100)
        thread.accounting.charge(3_000)
        sample = monitor.sample(thread, now=10_000, allocated_ppt=500)
        assert sample.used_us == 3_000
        assert sample.interval_us == 10_000
        assert sample.allocated_us == 5_000
        assert sample.used_fraction == pytest.approx(0.3)
        assert sample.allocated_fraction == pytest.approx(0.5)
        assert sample.unused_fraction_of_allocation == pytest.approx(0.4)

    def test_unused_fraction_zero_when_fully_used(self):
        monitor = UsageMonitor()
        thread = SimThread("t")
        monitor.sample(thread, now=0, allocated_ppt=100)
        thread.accounting.charge(1_000)
        sample = monitor.sample(thread, now=10_000, allocated_ppt=100)
        assert sample.unused_fraction_of_allocation == pytest.approx(0.0)

    def test_forget_resets_baseline(self):
        monitor = UsageMonitor()
        thread = SimThread("t")
        monitor.sample(thread, now=0, allocated_ppt=100)
        thread.accounting.charge(500)
        monitor.forget(thread)
        sample = monitor.sample(thread, now=20_000, allocated_ppt=100)
        assert sample.used_us == 0
        assert sample.interval_us == 0

    def test_run_before_block_passthrough(self):
        monitor = UsageMonitor()
        thread = SimThread("t")
        thread.accounting.charge(2_000)
        thread.accounting.note_block()
        assert monitor.run_before_block_us(thread) == pytest.approx(2_000)
