"""Property-based fault-churn invariants (the robustness contract).

Hypothesis layers random fault plans — CPU fail/recover windows, thread
runaways, stalls, and controller sensor faults — on top of random
open-system churn workloads, with the degradation manager and watchdog
armed, and asserts the invariants that must survive any such sequence:

* **conservation** — the extended identity
  ``total_thread_cpu + idle + stolen + offline == n_cpus * now`` holds
  at every checkpoint, so hotplug never leaks or double-charges time;
* **no lost, no double-dispatched threads** — stream bookkeeping adds
  up, every thread exists once, nothing runs after exiting, and no SMP
  round dispatches a thread on two CPUs — even while CPUs drain and
  hijacked bodies are swapped in and out;
* **engine equivalence** — the quantum oracle and the horizon engine
  produce bit-identical dispatch logs, accounting, injection records
  and quarantine histories under every fault type.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ControllerConfig
from repro.faults import (
    CPU_FAIL,
    RUNAWAY_START,
    SENSOR_CORRUPT,
    SENSOR_DROPOUT,
    STALL_START,
    DegradationManager,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.monitor.watchdog import Watchdog
from repro.sched.placement import (
    CacheWarmPlacement,
    LeastLoadedPlacement,
    NumaPackPlacement,
    PinnedPlacement,
    PipelineAffinityPlacement,
)
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Sleep
from repro.sim.thread import SimThread
from repro.sim.topology import CpuTopology
from repro.system import build_real_rate_system

from tests.test_properties_churn import (
    DURATION_US,
    assert_no_lost_no_double,
    build_churn,
    observe,
    stream_specs,
)

#: One injected fault: (time, kind knob, target knob, duration).
fault_specs = st.lists(
    st.tuples(
        st.integers(min_value=5_000, max_value=DURATION_US - 20_000),
        st.sampled_from(["cpu", "runaway", "stall"]),
        st.integers(min_value=0, max_value=5),
        st.sampled_from([8_000, 15_000, 25_000]),
    ),
    min_size=1,
    max_size=4,
)


def fault_plan(n_cpus, n_streams, faults, seed=17):
    """Translate strategy tuples into a (possibly missing-target) plan."""
    events = []
    for at_us, kind, target, duration in faults:
        if kind == "cpu":
            if n_cpus == 1:
                continue  # the last online CPU cannot fail
            events.append(
                FaultEvent(
                    at_us, CPU_FAIL, cpu=1 + target % (n_cpus - 1),
                    duration_us=duration,
                )
            )
        else:
            fault = RUNAWAY_START if kind == "runaway" else STALL_START
            # Target early job indices; a name that never spawned is a
            # logged miss, which both engines must record identically.
            name = f"s{target % n_streams}.{target % 3}"
            events.append(
                FaultEvent(at_us, fault, thread=name, duration_us=duration)
            )
    return FaultPlan(events=tuple(events), seed=seed)


def assert_conserved_with_offline(kernel):
    assert (
        kernel.total_thread_cpu_us()
        + kernel.idle_us
        + kernel.stolen_us
        + kernel.offline_us
        == kernel.capacity_us()
    ), "extended conservation identity violated under faults"


def build_faulty_churn(engine, n_cpus, specs, faults):
    kernel, churn = build_churn(engine, n_cpus, specs, [])
    injector = FaultInjector(
        kernel, fault_plan(n_cpus, len(specs), faults)
    )
    injector.install()
    manager = DegradationManager(kernel, kernel.scheduler)
    watchdog = Watchdog(
        kernel, kernel.scheduler,
        period_us=10_000, miss_windows=2, stall_windows=3,
    )
    return kernel, churn, injector, manager, watchdog


def observe_faults(injector, manager, watchdog):
    return (
        tuple((r.at_us, r.kind, r.detail, r.hit) for r in injector.log),
        tuple(
            (a.at_us, a.action, a.thread, a.before_ppt, a.after_ppt)
            for a in manager.actions
        ),
        tuple(
            # Keyed by name: tids are process-global, so the second
            # kernel built in one test numbers its threads higher.
            (q.name, q.verdict, q.quarantined_at_us, q.release_at_us,
             q.released, q.repromoted)
            for q in watchdog.history
        ),
    )


@pytest.mark.parametrize("n_cpus", [1, 4])
@settings(max_examples=12, deadline=None)
@given(specs=stream_specs, faults=fault_specs)
def test_fault_churn_invariants_and_engine_equivalence(n_cpus, specs, faults):
    observations = {}
    for engine in ("quantum", "horizon"):
        kernel, churn, injector, manager, watchdog = build_faulty_churn(
            engine, n_cpus, specs, faults
        )
        # Conservation must hold at arbitrary checkpoints, including
        # ones that land inside fault windows.
        for _ in range(3):
            kernel.run_for(DURATION_US // 3)
            assert_conserved_with_offline(kernel)
        assert_no_lost_no_double(kernel, churn)
        observations[engine] = (
            observe(kernel), observe_faults(injector, manager, watchdog)
        )
    quantum, horizon = observations["quantum"], observations["horizon"]
    assert horizon[0][0] == quantum[0][0], "dispatch log diverged"
    assert horizon[0][1] == quantum[0][1], "per-thread accounting diverged"
    assert horizon[0][2] == quantum[0][2], "kernel totals diverged"
    assert horizon[1] == quantum[1], (
        "injection / degradation / quarantine records diverged"
    )


@settings(max_examples=10, deadline=None)
@given(
    specs=stream_specs,
    faults=fault_specs,
    checkpoints=st.lists(
        st.integers(min_value=4_000, max_value=40_000), min_size=2, max_size=4
    ),
)
def test_conservation_at_irregular_checkpoints(specs, faults, checkpoints):
    """Run lengths chosen independently of the fault times: conservation
    and liveness bookkeeping hold no matter where the run pauses."""
    kernel, churn, injector, _manager, _watchdog = build_faulty_churn(
        "horizon", 4, specs, faults
    )
    for segment in checkpoints:
        kernel.run_for(segment)
        assert_conserved_with_offline(kernel)
        online = sum(1 for c in kernel.cpu_states if c.online)
        assert online == kernel.online_cpu_count
        assert 1 <= online <= 4
    assert_no_lost_no_double(kernel, churn)
    # Every planned event either hit or was recorded as a miss — the
    # injector never drops an event silently.
    due = [e for e in injector.plan.events if e.at_us < kernel.now]
    assert len(injector.log) >= len(due)


#: Sensor fault windows aimed at controlled threads ``c0``/``c1``.
sensor_specs = st.lists(
    st.tuples(
        st.integers(min_value=10_000, max_value=80_000),
        st.sampled_from(["dropout", "corrupt"]),
        st.integers(min_value=0, max_value=2),   # target (c2 never exists)
        st.sampled_from([10_000, 20_000]),
    ),
    min_size=1,
    max_size=3,
)


def thinker(burst_us, think_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(think_us)

    return body


@settings(max_examples=10, deadline=None)
@given(sensors=sensor_specs)
def test_sensor_faults_engine_equivalence(sensors):
    """Dropout / corruption windows on controller sensors stay
    bit-identical across engines: the corruption RNG is seeded and the
    controller consumes the same faulty readings in the same order."""
    events = tuple(
        FaultEvent(
            at_us,
            SENSOR_DROPOUT if mode == "dropout" else SENSOR_CORRUPT,
            thread=f"c{target}",
            duration_us=duration,
            magnitude=0.3 if mode == "corrupt" else 0.0,
        )
        for at_us, mode, target, duration in sensors
    )
    observations = {}
    for engine in ("quantum", "horizon"):
        system = build_real_rate_system(
            ControllerConfig(),
            charge_dispatch_overhead=False,
            charge_controller_overhead=False,
            record_dispatches=True,
            engine=engine,
        )
        kernel = system.kernel
        system.spawn_controlled("c0", thinker(800, 1_200))
        system.spawn_controlled("c1", thinker(500, 2_000))
        injector = FaultInjector(
            kernel, FaultPlan(events=events, seed=23),
            allocator=system.allocator,
        )
        injector.install()
        kernel.run_for(120_000)
        assert_conserved_with_offline(kernel)
        observations[engine] = (
            observe(kernel),
            tuple((r.at_us, r.kind, r.detail, r.hit) for r in injector.log),
        )
    assert observations["quantum"] == observations["horizon"], (
        "sensor faults broke engine equivalence"
    )


# ---------------------------------------------------------------------------
# Placement / topology properties
# ---------------------------------------------------------------------------
#: Every placement policy, flat and topology-aware, built for the
#: 8-CPU 2x2x2 topology used by the offline-safety property.
_PLACEMENT_TOPO = CpuTopology.from_spec("2x2x2")
_PLACEMENT_POLICIES = {
    "least_loaded": lambda: LeastLoadedPlacement(),
    "pinned": lambda: PinnedPlacement(),
    "cache_warm": lambda: CacheWarmPlacement(_PLACEMENT_TOPO),
    "numa_pack": lambda: NumaPackPlacement(_PLACEMENT_TOPO),
    "pipeline": lambda: PipelineAffinityPlacement(
        _PLACEMENT_TOPO, pairs=[("t0", "t1"), ("t2", "t3")]
    ),
}


@settings(max_examples=40, deadline=None)
@given(
    policy_name=st.sampled_from(sorted(_PLACEMENT_POLICIES)),
    n_threads=st.integers(min_value=1, max_value=8),
    online=st.sets(
        st.integers(min_value=0, max_value=7), min_size=1, max_size=8
    ),
    pins=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
        min_size=8, max_size=8,
    ),
    last_cpus=st.lists(
        st.one_of(st.none(), st.integers(min_value=0, max_value=7)),
        min_size=8, max_size=8,
    ),
    weights=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=8, max_size=8
    ),
)
def test_no_policy_ever_places_on_an_offline_cpu(
    policy_name, n_threads, online, pins, last_cpus, weights
):
    """Whatever the pins, history and online subset, every policy maps
    every thread to an *online* CPU — honouring online pins exactly and
    sending offline pins to the lowest-numbered online CPU (the
    kernel's drain target)."""
    policy = _PLACEMENT_POLICIES[policy_name]()
    threads = []
    for i in range(n_threads):
        thread = SimThread(f"t{i}")
        thread.affinity = pins[i]  # direct set: offline pins allowed here
        thread.last_cpu = last_cpus[i]
        threads.append(thread)
    online_tuple = tuple(sorted(online))
    mapping = policy.assign(
        threads, 8, lambda t: weights[int(t.name[1:])], online=online_tuple
    )
    assert set(mapping) == {t.tid for t in threads}
    for thread in threads:
        cpu = mapping[thread.tid]
        assert cpu in online, (
            f"{policy_name} placed {thread.name} on offline CPU {cpu}"
        )
        if thread.affinity is not None:
            expected = (
                thread.affinity
                if thread.affinity in online
                else online_tuple[0]
            )
            assert cpu == expected, (
                f"{policy_name} broke the pin/fallback contract for "
                f"{thread.name}: pin {thread.affinity} -> {cpu}"
            )


@pytest.mark.parametrize("policy_name", ["cache_warm", "numa_pack"])
@settings(max_examples=8, deadline=None)
@given(
    faults=fault_specs,
    pins=st.lists(
        st.tuples(
            st.integers(min_value=5_000, max_value=DURATION_US - 10_000),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=4),   # 4 == unpin
        ),
        min_size=0, max_size=3,
    ),
)
def test_migration_penalties_conserve_under_hotplug(policy_name, faults, pins):
    """Random CPU fail/recover windows plus random re-pins on a
    penalised topology kernel: the extended conservation identity
    (migration time charged as stolen) holds at every checkpoint and
    both engines agree bit-for-bit, migration counters included."""
    topo = CpuTopology(
        sockets=2, cores_per_socket=1, threads_per_core=2,
        smt_migration_us=25, core_migration_us=80, socket_migration_us=200,
    )
    observations = {}
    for engine in ("quantum", "horizon"):
        scheduler = ReservationScheduler()
        scheduler.placement = (
            CacheWarmPlacement(topo) if policy_name == "cache_warm"
            else NumaPackPlacement(topo)
        )
        kernel = Kernel(
            scheduler, n_cpus=4, topology=topo,
            record_dispatches=True, engine=engine,
        )
        threads = []
        for i in range(6):
            thread = kernel.spawn(f"grp{i % 2}.{i}", thinker(1_500, 2_000))
            threads.append(thread)
        scheduler.set_reservation(threads[0], 200, 10_000)
        injector = FaultInjector(kernel, fault_plan(4, 2, faults))
        injector.install()
        for at_us, victim, target in pins:
            def repin(victim=victim, target=target):
                thread = threads[victim % len(threads)]
                if target == 4:
                    thread.pin_to(None)
                elif kernel.cpu_is_online(target):
                    # An offline target would raise; both engines see
                    # the same online set at the same virtual time, so
                    # skipping is deterministic too.
                    thread.pin_to(target)
            kernel.events.schedule(at_us, repin, label="prop.repin")
        for _ in range(3):
            kernel.run_for(DURATION_US // 3)
            assert_conserved_with_offline(kernel)
        assert kernel.migration_us == sum(
            c.migration_us for c in kernel.cpu_states
        )
        assert kernel.migrations == sum(
            c.migrations for c in kernel.cpu_states
        )
        observations[engine] = (
            observe(kernel), kernel.migrations, kernel.migration_us
        )
    assert observations["quantum"] == observations["horizon"], (
        "migration penalties broke engine equivalence under hotplug"
    )
