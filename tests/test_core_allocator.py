"""Unit and integration tests for the ProportionAllocator and driver."""

import pytest

from repro.core.allocator import ProportionAllocator
from repro.core.config import ControllerConfig
from repro.core.driver import ControllerDriver, ControllerOverheadModel
from repro.core.errors import AdmissionError, ControllerError
from repro.core.overload import FairShareSquish
from repro.core.taxonomy import ThreadClass, ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.ipc.registry import SymbioticRegistry
from repro.ipc.roles import Role
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, Sleep
from repro.system import build_real_rate_system

from tests.conftest import consumer_body, producer_body, spin_body


def make_setup():
    scheduler = ReservationScheduler()
    kernel = Kernel(scheduler, charge_dispatch_overhead=False, syscall_cost_us=0)
    registry = SymbioticRegistry()
    allocator = ProportionAllocator(scheduler, registry, ControllerConfig())
    return kernel, scheduler, registry, allocator


class TestRegistration:
    def test_register_and_classify_misc(self):
        kernel, scheduler, registry, allocator = make_setup()
        thread = kernel.spawn("hog", spin_body())
        allocator.register(thread)
        decisions = allocator.update(now=10_000)
        assert len(decisions) == 1
        assert decisions[0].thread_class is ThreadClass.MISCELLANEOUS

    def test_register_real_time_actuates_immediately(self):
        kernel, scheduler, registry, allocator = make_setup()
        thread = kernel.spawn("rt", spin_body())
        allocator.register(thread, ThreadSpec(proportion_ppt=300, period_us=10_000))
        reservation = scheduler.reservation(thread)
        assert reservation.proportion_ppt == 300
        assert reservation.period_us == 10_000

    def test_double_registration_rejected(self):
        kernel, _, _, allocator = make_setup()
        thread = kernel.spawn("t", spin_body())
        allocator.register(thread)
        with pytest.raises(ControllerError):
            allocator.register(thread)

    def test_admission_control_rejects_oversubscription(self):
        kernel, _, _, allocator = make_setup()
        first = kernel.spawn("rt1", spin_body())
        allocator.register(first, ThreadSpec(proportion_ppt=600, period_us=10_000))
        second = kernel.spawn("rt2", spin_body())
        with pytest.raises(AdmissionError):
            allocator.register(
                second, ThreadSpec(proportion_ppt=500, period_us=10_000)
            )

    def test_unregister_clears_reservation(self):
        kernel, scheduler, _, allocator = make_setup()
        thread = kernel.spawn("t", spin_body())
        allocator.register(thread, ThreadSpec(proportion_ppt=200, period_us=10_000))
        allocator.unregister(thread)
        assert scheduler.reservation(thread) is None
        assert thread not in allocator.controlled_threads()

    def test_spec_for_unknown_thread_raises(self):
        kernel, _, _, allocator = make_setup()
        thread = kernel.spawn("t", spin_body())
        with pytest.raises(ControllerError):
            allocator.spec_for(thread)

    def test_exited_threads_dropped_on_update(self):
        kernel, _, _, allocator = make_setup()

        def brief(env):
            yield Compute(100)

        thread = kernel.spawn("brief", brief)
        allocator.register(thread)
        allocator.update(now=kernel.now)  # grants the thread an allocation
        kernel.run_for(10_000)            # thread runs its 100 us and exits
        allocator.update(now=kernel.now)
        assert thread not in allocator.controlled_threads()


class TestDecisions:
    def test_real_time_allocation_never_changes(self):
        kernel, scheduler, _, allocator = make_setup()
        thread = kernel.spawn("rt", spin_body())
        allocator.register(thread, ThreadSpec(proportion_ppt=250, period_us=20_000))
        for step in range(1, 20):
            decisions = allocator.update(now=step * 10_000)
        decision = [d for d in decisions if d.thread is thread][0]
        assert decision.granted_ppt == 250
        assert decision.thread_class is ThreadClass.REAL_TIME
        assert scheduler.reservation(thread).proportion_ppt == 250

    def test_aperiodic_gets_default_period(self):
        kernel, scheduler, _, allocator = make_setup()
        thread = kernel.spawn("aperiodic", spin_body())
        allocator.register(thread, ThreadSpec(proportion_ppt=150))
        allocator.update(now=10_000)
        reservation = scheduler.reservation(thread)
        assert reservation.proportion_ppt == 150
        assert reservation.period_us == allocator.config.default_period_us

    def test_real_rate_thread_with_full_queue_gains_allocation(self):
        kernel, scheduler, registry, allocator = make_setup()
        queue = BoundedBuffer("q", 1_000)
        queue.commit_put(1_000)
        thread = kernel.spawn("consumer", spin_body())
        registry.register(thread, queue, Role.CONSUMER)
        allocator.register(thread)
        previous = 0
        for step in range(1, 30):
            decisions = allocator.update(now=step * 10_000)
            decision = decisions[0]
        assert decision.thread_class is ThreadClass.REAL_RATE
        assert decision.pressure_raw == pytest.approx(0.5)
        # The thread never actually runs in this test (the kernel is not
        # driven), so the reclaim rule caps how far the allocation can
        # climb; it must still have risen well above the floor.
        assert decision.granted_ppt > allocator.config.min_proportion_ppt * 10

    def test_interactive_period_pinned(self):
        kernel, scheduler, registry, allocator = make_setup()
        from repro.ipc.tty import TTY

        tty = TTY("tty0")
        thread = kernel.spawn("editor", spin_body())
        registry.register(thread, tty, Role.CONSUMER)
        allocator.register(thread, ThreadSpec(interactive=True))
        allocator.update(now=10_000)
        assert (
            scheduler.reservation(thread).period_us
            == allocator.config.interactive_period_us
        )

    def test_misc_threads_grow_until_overload_then_share(self):
        kernel, scheduler, _, allocator = make_setup()
        threads = [kernel.spawn(f"hog{i}", spin_body()) for i in range(3)]
        for thread in threads:
            allocator.register(thread)
        kernel.run_for(20_000)
        for step in range(2, 200):
            allocator.update(now=step * 10_000)
        allocations = [allocator.current_allocation_ppt(t) for t in threads]
        total = sum(allocations)
        assert total <= allocator.config.overload_threshold_ppt + 3
        assert max(allocations) - min(allocations) <= 30

    def test_minimum_allocation_guarantee(self):
        kernel, _, _, allocator = make_setup()
        threads = [kernel.spawn(f"hog{i}", spin_body()) for i in range(10)]
        for thread in threads:
            allocator.register(thread)
        for step in range(1, 100):
            allocator.update(now=step * 10_000)
        for thread in threads:
            assert (
                allocator.current_allocation_ppt(thread)
                >= allocator.config.min_proportion_ppt
            )

    def test_total_allocated_reported(self):
        kernel, _, _, allocator = make_setup()
        thread = kernel.spawn("rt", spin_body())
        allocator.register(thread, ThreadSpec(proportion_ppt=100, period_us=10_000))
        assert allocator.total_allocated_ppt() == 100


class TestOverloadResolution:
    def test_real_time_protected_from_squish(self):
        kernel, scheduler, _, allocator = make_setup()
        rt = kernel.spawn("rt", spin_body())
        allocator.register(rt, ThreadSpec(proportion_ppt=400, period_us=10_000))
        hogs = [kernel.spawn(f"hog{i}", spin_body()) for i in range(3)]
        for hog in hogs:
            allocator.register(hog)
        for step in range(1, 100):
            allocator.update(now=step * 10_000)
        assert scheduler.reservation(rt).proportion_ppt == 400
        hog_total = sum(allocator.current_allocation_ppt(h) for h in hogs)
        assert hog_total <= allocator.config.overload_threshold_ppt - 400 + 3

    def test_real_rate_satisfied_before_misc(self):
        """A real-rate consumer that is genuinely behind out-ranks a hog.

        The consumer's queue is refilled faster than the consumer can
        drain it with a fair-share allocation, so its measured need
        exceeds the hog's constant pseudo-pressure and the two-tier
        overload policy must favour it.
        """
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        queue = BoundedBuffer("q", 10_000)

        def consumer_work(env):
            while True:
                yield Get(queue, 100)
                yield Compute(1_000)

        consumer = system.spawn_controlled("consumer", consumer_work)
        system.link(consumer, queue, Role.CONSUMER)
        hog = system.spawn_controlled("hog", spin_body())

        def refill(now):
            # Offer ~70% of the CPU's worth of work every 10 ms.
            if queue.space_free() >= 700:
                queue.commit_put(700)

        system.kernel.add_periodic(10_000, refill)
        system.run_for(3_000_000)
        consumer_ppt = system.allocator.current_allocation_ppt(consumer)
        hog_ppt = system.allocator.current_allocation_ppt(hog)
        assert consumer_ppt > hog_ppt
        assert consumer.accounting.total_us > hog.accounting.total_us

    def test_quality_exception_raised_when_starved(self):
        config = ControllerConfig(overload_threshold_ppt=400)
        scheduler = ReservationScheduler()
        kernel = Kernel(scheduler, charge_dispatch_overhead=False, syscall_cost_us=0)
        registry = SymbioticRegistry()
        allocator = ProportionAllocator(scheduler, registry, config)

        seen = []
        queue = BoundedBuffer("q", 1_000)
        queue.commit_put(1_000)  # saturated full, consumer hopelessly behind
        consumer = kernel.spawn("consumer", spin_body())
        registry.register(consumer, queue, Role.CONSUMER)
        allocator.register(
            consumer, ThreadSpec(quality_callback=lambda exc: seen.append(exc))
        )
        rt = kernel.spawn("rt", spin_body())
        allocator.register(rt, ThreadSpec(proportion_ppt=390, period_us=10_000))
        other = kernel.spawn("rr", spin_body())
        registry.register(other, BoundedBuffer("q2", 100), Role.CONSUMER)
        allocator.register(other)
        # Saturate q2 too so both real-rate threads demand allocation.
        registry.channel_by_name("q2").commit_put(100)
        for step in range(1, 80):
            allocator.update(now=step * 10_000)
        assert allocator.quality_exceptions
        assert seen
        assert seen[0].granted_ppt < seen[0].desired_ppt


class TestControllerDriver:
    def test_driver_runs_periodically(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        system.kernel.run_for(100_000)
        # Fires at t = 0, 10 ms, ..., 90 ms; the end time is exclusive.
        assert system.driver.invocations == 10

    def test_driver_records_allocation_traces(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        thread = system.spawn_controlled("hog", spin_body())
        system.kernel.run_for(50_000)
        assert f"alloc:{thread.name}" in system.kernel.tracer

    def test_overhead_model_linear(self):
        model = ControllerOverheadModel(fixed_us=5.0, per_thread_us=2.0)
        assert model.cost_us(0) == 5.0
        assert model.cost_us(10) == 25.0
        assert model.overhead_fraction(10, period_us=10_000) == pytest.approx(0.0025)

    def test_overhead_model_validation(self):
        with pytest.raises(ValueError):
            ControllerOverheadModel(fixed_us=-1)
        with pytest.raises(ValueError):
            ControllerOverheadModel().cost_us(-1)
        with pytest.raises(ValueError):
            ControllerOverheadModel().overhead_fraction(1, period_us=0)

    def test_driver_charges_overhead_as_stolen_time(self):
        system = build_real_rate_system(charge_dispatch_overhead=False)
        for i in range(5):
            system.spawn_controlled(f"hog{i}", spin_body())
        system.kernel.run_for(1_000_000)
        assert system.kernel.stolen_controller_us > 0

    def test_driver_stop(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        system.kernel.run_for(20_000)
        invocations = system.driver.invocations
        system.driver.stop()
        system.kernel.run_for(50_000)
        assert system.driver.invocations == invocations

    def test_measured_wall_clock_positive(self):
        system = build_real_rate_system(
            charge_dispatch_overhead=False, charge_controller_overhead=False
        )
        system.spawn_controlled("hog", spin_body())
        system.kernel.run_for(100_000)
        assert system.driver.measured_wall_us_per_invocation() > 0
