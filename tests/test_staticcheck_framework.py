"""Framework behaviour of ``repro lint``: suppressions, baseline, JSON.

The checkers themselves are covered by ``test_staticcheck_checkers``;
here we pin the machinery that decides what a finding *becomes* —
suppressed, baselined, or reported — and the stability of the wire
forms (``--json`` schema, baseline keys).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.staticcheck.baseline import (
    BASELINE_SCHEMA_VERSION,
    build_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.core import (
    LINT_SCHEMA_VERSION,
    SUPPRESSION_CHECK,
    Finding,
    ModuleSource,
    Project,
    run_checks,
)
from repro.staticcheck.determinism import DeterminismChecker

FIXTURES = Path(__file__).parent / "staticcheck_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def fixture_project(*names: str) -> Project:
    return Project([FIXTURES / name for name in names], display_root=REPO_ROOT)


# ----------------------------------------------------------------------
# suppression parsing
# ----------------------------------------------------------------------
def test_suppression_comment_parses_checks_and_justification():
    module = ModuleSource(
        Path("x.py"),
        "x.py",
        "import time\n"
        "t = time.time()  # repro-lint: disable=determinism,epoch-contract -- why not\n",
    )
    (suppression,) = module.suppressions
    assert suppression.checks == ("determinism", "epoch-contract")
    assert suppression.justification == "why not"
    assert suppression.covers == (2,)


def test_standalone_suppression_covers_next_line():
    module = ModuleSource(
        Path("x.py"),
        "x.py",
        "# repro-lint: disable=determinism -- diagnostics only\n"
        "t = 1\n",
    )
    (suppression,) = module.suppressions
    assert suppression.covers == (1, 2)
    assert module.suppression_for("determinism", 2) is suppression
    assert module.suppression_for("epoch-contract", 2) is None


def test_float_order_annotation_detected_in_header_only():
    annotated = ModuleSource(Path("a.py"), "a.py", "# float-order: exact\nx = 1\n")
    assert annotated.float_order_exact
    buried = ModuleSource(
        Path("b.py"), "b.py", "\n" * 40 + "# float-order: exact\n"
    )
    assert not buried.float_order_exact


# ----------------------------------------------------------------------
# the suppression meta-check
# ----------------------------------------------------------------------
def test_justified_suppression_suppresses_and_is_not_reported():
    project = fixture_project("suppress_mixed.py")
    result = run_checks(project, [DeterminismChecker()])
    suppressed_lines = {f.line for f in result.suppressed}
    # the justified waiver suppressed its time.time finding
    assert any(f.check == "determinism" for f in result.suppressed)
    # the dead waiver produced an unused-suppression finding
    messages = [f.message for f in result.findings if f.check == SUPPRESSION_CHECK]
    assert any("unused suppression" in m for m in messages)
    assert any("lacks a justification" in m for m in messages)
    assert suppressed_lines  # sanity: something was actually suppressed


def test_unused_suppression_not_flagged_when_its_check_did_not_run():
    project = fixture_project("suppress_mixed.py")

    class NullChecker(DeterminismChecker):
        name = "other-check"

        def check(self, project):
            return []

    result = run_checks(project, [NullChecker()])
    assert not any(
        "unused suppression" in f.message
        for f in result.findings
        if f.check == SUPPRESSION_CHECK
    )


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_round_trip_grandfathers_existing_findings(tmp_path):
    project = fixture_project("determinism_bad.py")
    first = run_checks(project, [DeterminismChecker()])
    assert first.findings

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    keys = load_baseline(baseline_path)
    assert sum(keys.values()) == len(first.findings)

    second = run_checks(
        project, [DeterminismChecker()], baseline_keys=keys
    )
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)


def test_baseline_does_not_absorb_new_findings(tmp_path):
    project = fixture_project("determinism_bad.py")
    first = run_checks(project, [DeterminismChecker()])
    keys = load_baseline_from(first.findings[:-1], tmp_path)
    second = run_checks(project, [DeterminismChecker()], baseline_keys=keys)
    assert len(second.findings) == 1
    assert second.findings[0].baseline_key() == first.findings[-1].baseline_key()


def load_baseline_from(findings, tmp_path):
    path = tmp_path / "partial.json"
    write_baseline(path, findings)
    return load_baseline(path)


def test_baseline_key_ignores_line_but_not_message():
    a = Finding(check="c", path="p.py", line=10, message="m", symbol="s")
    b = Finding(check="c", path="p.py", line=99, message="m", symbol="s")
    c = Finding(check="c", path="p.py", line=10, message="other", symbol="s")
    assert a.baseline_key() == b.baseline_key()
    assert a.baseline_key() != c.baseline_key()


def test_baseline_schema_version_mismatch_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [])
    text = path.read_text().replace(
        f'"schema_version": {BASELINE_SCHEMA_VERSION}', '"schema_version": 999'
    )
    path.write_text(text)
    with pytest.raises(ValueError):
        load_baseline(path)


def test_build_baseline_counts_duplicate_keys():
    finding = Finding(check="c", path="p.py", line=1, message="m")
    payload = build_baseline([finding, finding])
    entry = payload["entries"][finding.baseline_key()]
    assert entry["count"] == 2
    assert entry["message"] == "m"


# ----------------------------------------------------------------------
# --json wire form
# ----------------------------------------------------------------------
def test_json_report_schema():
    project = fixture_project("determinism_bad.py")
    result = run_checks(project, [DeterminismChecker()])
    report = result.to_dict()
    assert report["schema_version"] == LINT_SCHEMA_VERSION
    assert report["checks"] == ["determinism"]
    assert report["files_scanned"] == 1
    assert report["suppressed"] == 0
    assert report["baselined"] == 0
    assert report["counts"]["determinism"] == len(result.findings)
    for entry in report["findings"]:
        assert set(entry) == {"check", "path", "line", "symbol", "message", "key"}
        assert entry["path"].startswith("tests/staticcheck_fixtures/")


def test_parse_error_becomes_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    project = Project([bad])
    result = run_checks(project, [DeterminismChecker()])
    assert any(f.check == "parse" for f in result.findings)
