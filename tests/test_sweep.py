"""Tests for grid expansion and the parallel sweep runner."""

import pytest

import repro.experiments  # noqa: F401 — importing populates the registry
from repro.analysis.results import ExperimentResult
from repro.experiments.registry import REGISTRY, ParameterError
from repro.experiments.sweep import (
    SWEEP_SCHEMA_VERSION,
    expand_grid,
    run_sweep,
    sweep_to_json,
)

#: A deliberately tiny smp_scaling configuration so sweep tests stay fast.
SMALL_FARM = {
    "n_servers": "2",
    "requests_per_second": "60",
    "duration_s": "0.4",
}


class TestExpandGrid:
    def test_cartesian_product_last_axis_fastest(self):
        spec = REGISTRY.get("figure8")
        axes, points = expand_grid(
            spec, {"sim_seconds": "0.1,0.2", "seed": "1,2"}
        )
        assert axes == {"sim_seconds": [0.1, 0.2], "seed": [1, 2]}
        assert points == [
            {"sim_seconds": 0.1, "seed": 1},
            {"sim_seconds": 0.1, "seed": 2},
            {"sim_seconds": 0.2, "seed": 1},
            {"sim_seconds": 0.2, "seed": 2},
        ]

    def test_colon_builds_list_valued_points(self):
        spec = REGISTRY.get("smp_scaling")
        axes, points = expand_grid(spec, {"n_cpus": "1:2,4"})
        assert points == [{"n_cpus": (1, 2)}, {"n_cpus": (4,)}]

    def test_values_validated_against_schema(self):
        spec = REGISTRY.get("smp_scaling")
        with pytest.raises(ParameterError):
            expand_grid(spec, {"n_cpus": "0,2"})
        with pytest.raises(ParameterError):
            expand_grid(spec, {"bogus": "1"})

    def test_typed_sequences_accepted(self):
        spec = REGISTRY.get("figure8")
        _, points = expand_grid(spec, {"sim_seconds": [0.1, 0.2]})
        assert points == [{"sim_seconds": 0.1}, {"sim_seconds": 0.2}]


class TestRunSweep:
    def test_artifact_shape_and_result_round_trip(self):
        artifact = run_sweep(
            "smp_scaling", {"n_cpus": "1,2", **SMALL_FARM}, jobs=1
        )
        assert artifact["schema_version"] == SWEEP_SCHEMA_VERSION
        assert artifact["experiment"] == "smp_scaling"
        assert artifact["kind"] == "sweep"
        assert artifact["grid"]["n_cpus"] == [[1], [2]]
        assert len(artifact["points"]) == 2
        for point in artifact["points"]:
            result = ExperimentResult.from_dict(point["result"])
            assert result.experiment_id == "smp_scaling"
            assert result.metadata["params"]["n_servers"] == 2

    def test_parallel_sweep_byte_identical_to_serial(self):
        grid = {"n_cpus": "1,2", "seed": "0,1", **SMALL_FARM}
        serial = run_sweep("smp_scaling", grid, jobs=1)
        parallel = run_sweep("smp_scaling", grid, jobs=4)
        assert sweep_to_json(parallel) == sweep_to_json(serial)

    def test_seed_axis_is_meaningful(self):
        """Different seeds jitter arrivals and therefore change the
        measured behaviour — sweeping seeds is not a no-op.  The farm
        is saturated (2 servers × 400 req/s × 1.5 ms ≈ 1.2 CPUs of
        demand on one CPU) so arrival timing shows up in the outcome."""
        grid = {
            "n_cpus": "1", "seed": "0,1", "n_servers": "2",
            "requests_per_second": "400", "duration_s": "0.5",
        }
        artifact = run_sweep("smp_scaling", grid, jobs=1)
        first, second = [point["result"] for point in artifact["points"]]
        assert first["metadata"]["seed"] == 0
        assert second["metadata"]["seed"] == 1
        assert first["metrics"] != second["metrics"]

    def test_same_seed_is_reproducible(self):
        grid = {"n_cpus": "1", "seed": "7", **SMALL_FARM}
        first = run_sweep("smp_scaling", grid, jobs=1)
        second = run_sweep("smp_scaling", grid, jobs=1)
        assert sweep_to_json(first) == sweep_to_json(second)
