"""Tests for the declarative experiment registry."""

import pytest

import repro.experiments  # noqa: F401 — importing populates the registry
from repro.analysis.results import ExperimentResult
from repro.experiments.registry import (
    REGISTRY,
    DuplicateExperimentError,
    ExperimentRegistry,
    Param,
    ParameterError,
    RegistryError,
    UnknownExperimentError,
    experiment,
)

ALL_EXPERIMENTS = (
    "ablation_period",
    "ablation_pid",
    "ablation_squish",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "inversion",
    "smp_scaling",
    "taxonomy",
)


def _stub(name="stub", params=(), quick=None, registry=None):
    """Register a spec whose func records the kwargs it was called with."""
    calls = []

    @experiment(name=name, description="a stub", params=params,
                quick=quick, registry=registry)
    def stub_experiment(**kwargs):
        calls.append(kwargs)
        return ExperimentResult(experiment_id=name, title="stub")

    return stub_experiment.spec, calls


class TestRegistryContents:
    def test_all_ten_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) <= set(REGISTRY.names())
        assert len(REGISTRY) >= 10

    def test_every_spec_declares_a_seed_parameter(self):
        for name in ALL_EXPERIMENTS:
            spec = REGISTRY.get(name)
            assert "seed" in {p.name for p in spec.params}, name

    def test_specs_carry_descriptions_and_defaults(self):
        for spec in REGISTRY:
            assert spec.description
            for param in spec.params:
                # Defaults satisfy their own schema.
                param.validate(param.default)

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownExperimentError, match="figure5"):
            REGISTRY.get("nope")

    def test_duplicate_name_rejected(self):
        registry = ExperimentRegistry()
        _stub("dup", registry=registry)
        with pytest.raises(DuplicateExperimentError):
            _stub("dup", registry=registry)

    def test_attached_spec_matches_lookup(self):
        from repro.experiments.figure8 import figure8_experiment

        assert figure8_experiment.spec is REGISTRY.get("figure8")


class TestParam:
    def test_scalar_parsing(self):
        assert Param("x", kind="int").parse("42") == 42
        assert Param("x", kind="float").parse("2.5") == 2.5
        assert Param("x", kind="bool").parse("true") is True
        assert Param("x", kind="bool").parse("0") is False
        assert Param("x", kind="str").parse("abc") == "abc"

    def test_list_parsing_accepts_comma_and_colon(self):
        param = Param("x", kind="int_list")
        assert param.parse("1,2,4") == (1, 2, 4)
        assert param.parse("1:2:4") == (1, 2, 4)
        assert param.parse([1, 2]) == (1, 2)

    def test_bad_values_raise_parameter_error(self):
        with pytest.raises(ParameterError):
            Param("x", kind="int").parse("two")
        with pytest.raises(ParameterError):
            Param("x", kind="bool").parse("maybe")

    def test_bounds_and_choices(self):
        bounded = Param("x", kind="int", minimum=1, maximum=8)
        assert bounded.parse("8") == 8
        with pytest.raises(ParameterError):
            bounded.parse("0")
        with pytest.raises(ParameterError):
            bounded.parse("9")
        listed = Param("x", kind="int_list", minimum=1)
        with pytest.raises(ParameterError):
            listed.parse("1,0")
        choosy = Param("x", kind="str", choices=("a", "b"))
        with pytest.raises(ParameterError):
            choosy.parse("c")

    def test_empty_list_rejected(self):
        with pytest.raises(ParameterError):
            Param("x", kind="int_list").parse(())

    def test_scalar_promotes_to_one_element_list(self):
        assert Param("x", kind="int_list").parse(4) == (4,)

    def test_typed_sequence_elements_are_coerced(self):
        assert Param("x", kind="int_list", minimum=0).parse(("1", 2)) == (1, 2)
        assert Param("x", kind="float_list").parse((1, 2)) == (1.0, 2.0)
        with pytest.raises(ParameterError):
            Param("x", kind="int_list").parse((1.5,))

    def test_wrong_scalar_type_rejected_cleanly(self):
        with pytest.raises(ParameterError):
            Param("x", kind="int").parse(2.5)
        with pytest.raises(ParameterError):
            Param("x", kind="bool").parse(1)
        # bool is an int subclass but is not a valid int value.
        with pytest.raises(ParameterError):
            Param("x", kind="int").parse(True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Param("x", kind="complex")


class TestSpecRun:
    def test_defaults_quick_and_overrides_layering(self):
        registry = ExperimentRegistry()
        spec, calls = _stub(
            "layered",
            params=(
                Param("a", kind="int", default=1),
                Param("b", kind="int", default=2),
                Param("c", kind="int", default=3),
            ),
            quick={"a": 10, "b": 20},
            registry=registry,
        )
        spec.run()
        assert calls[-1] == {"a": 1, "b": 2, "c": 3}
        spec.run(quick=True)
        assert calls[-1] == {"a": 10, "b": 20, "c": 3}
        # Explicit overrides (CLI strings) beat quick mode.
        spec.run({"b": "99"}, quick=True)
        assert calls[-1] == {"a": 10, "b": 99, "c": 3}

    def test_run_stamps_metadata(self):
        registry = ExperimentRegistry()
        spec, _ = _stub(
            "stamped",
            params=(Param("xs", kind="int_list", default=(1, 2)),),
            registry=registry,
        )
        result = spec.run(quick=True)
        assert result.metadata["experiment"] == "stamped"
        assert result.metadata["params"] == {"xs": [1, 2]}
        assert result.metadata["quick"] is True

    def test_unknown_override_rejected(self):
        spec = REGISTRY.get("figure8")
        with pytest.raises(ParameterError, match="no parameter"):
            spec.coerce({"bogus": "1"})

    def test_scalar_override_for_list_param_runs(self):
        # The acceptance-path shape: sweeping smp_scaling's n_cpus axis
        # hands the experiment a bare int per point.
        spec = REGISTRY.get("smp_scaling")
        assert spec.coerce({"n_cpus": 4}) == {"n_cpus": (4,)}

    def test_quick_values_are_parsed_and_validated(self):
        registry = ExperimentRegistry()
        spec, _ = _stub(
            "quickparse",
            params=(Param("xs", kind="float_list", default=(1.0,)),),
            quick={"xs": (1, 2)},
            registry=registry,
        )
        assert spec.quick["xs"] == (1.0, 2.0)
        with pytest.raises(ParameterError):
            _stub(
                "quickbad",
                params=(Param("n", kind="int", minimum=1, default=1),),
                quick={"n": 0},
                registry=registry,
            )

    def test_defaults_are_normalised_at_registration(self):
        registry = ExperimentRegistry()
        spec, _ = _stub(
            "defaultnorm",
            params=(Param("xs", kind="float_list", default=(1, 2)),),
            registry=registry,
        )
        assert spec.param("xs").default == (1.0, 2.0)

    def test_quick_override_for_unknown_param_rejected_at_registration(self):
        registry = ExperimentRegistry()
        with pytest.raises(RegistryError, match="quick override"):
            _stub("badquick", quick={"nope": 1}, registry=registry)

    def test_duplicate_param_names_rejected_at_registration(self):
        registry = ExperimentRegistry()
        with pytest.raises(RegistryError, match="duplicate parameter"):
            _stub(
                "dupparam",
                params=(Param("a", kind="int"), Param("a", kind="int")),
                registry=registry,
            )


class TestBackCompatWrappers:
    def test_run_wrappers_match_registry_results(self):
        from repro.experiments.figure8 import run_figure8

        via_wrapper = run_figure8(
            frequencies_hz=(100, 1_000, 4_000), sim_seconds=0.2
        )
        via_registry = REGISTRY.run(
            "figure8",
            {"frequencies_hz": "100,1000,4000", "sim_seconds": "0.2"},
        )
        assert via_wrapper.metrics == via_registry.metrics

    def test_smp_wrapper_maps_cpu_counts_to_n_cpus(self):
        from repro.experiments.smp_scaling import run_smp_scaling

        result = run_smp_scaling(
            cpu_counts=(2,), n_servers=2, requests_per_second=60.0,
            duration_s=0.4,
        )
        assert "served_rps_2cpu" in result.metrics
