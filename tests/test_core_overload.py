"""Unit tests for admission control and the squish policies."""

import pytest

from repro.core.config import ControllerConfig
from repro.core.errors import AdmissionError
from repro.core.overload import (
    FairShareSquish,
    SquishRequest,
    WeightedFairShareSquish,
    check_admission,
)


class TestSquishRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            SquishRequest(key=1, desired_ppt=-1)
        with pytest.raises(ValueError):
            SquishRequest(key=1, desired_ppt=100, importance=0)


class TestFairShareSquish:
    def test_no_squish_when_fits(self):
        policy = FairShareSquish()
        requests = [SquishRequest(1, 200), SquishRequest(2, 300)]
        grants = policy.squish(requests, available_ppt=600)
        assert grants == {1: 200, 2: 300}

    def test_proportional_reduction(self):
        policy = FairShareSquish()
        requests = [SquishRequest(1, 600), SquishRequest(2, 300)]
        grants = policy.squish(requests, available_ppt=450)
        # Scaled by one half, preserving the 2:1 ratio.
        assert grants[1] == pytest.approx(300, abs=2)
        assert grants[2] == pytest.approx(150, abs=2)

    def test_equal_desires_get_equal_grants(self):
        policy = FairShareSquish()
        requests = [SquishRequest(i, 900) for i in range(3)]
        grants = policy.squish(requests, available_ppt=600)
        values = list(grants.values())
        assert max(values) - min(values) <= 1
        assert sum(values) <= 600

    def test_total_never_exceeds_available(self):
        policy = FairShareSquish()
        requests = [SquishRequest(i, 500 + i * 100) for i in range(5)]
        grants = policy.squish(requests, available_ppt=700)
        assert sum(grants.values()) <= 700 + len(requests)  # floor rounding slack

    def test_small_request_not_inflated(self):
        policy = FairShareSquish()
        requests = [SquishRequest(1, 50), SquishRequest(2, 900)]
        grants = policy.squish(requests, available_ppt=800)
        assert grants[1] <= 50

    def test_empty_requests(self):
        assert FairShareSquish().squish([], 500) == {}

    def test_zero_available_floors_at_minimum(self):
        policy = FairShareSquish(min_proportion_ppt=5)
        requests = [SquishRequest(1, 400), SquishRequest(2, 400)]
        grants = policy.squish(requests, available_ppt=0)
        assert grants[1] == 5
        assert grants[2] == 5

    def test_minimum_proportion_enforced(self):
        policy = FairShareSquish(min_proportion_ppt=10)
        requests = [SquishRequest(1, 900), SquishRequest(2, 900), SquishRequest(3, 20)]
        grants = policy.squish(requests, available_ppt=100)
        assert all(g >= 10 for g in grants.values())


class TestWeightedFairShareSquish:
    def test_importance_biases_shares(self):
        policy = WeightedFairShareSquish()
        requests = [
            SquishRequest(1, 900, importance=1.0),
            SquishRequest(2, 900, importance=3.0),
        ]
        grants = policy.squish(requests, available_ppt=400)
        assert grants[2] > grants[1]
        assert grants[2] / grants[1] == pytest.approx(3.0, rel=0.1)

    def test_importance_cannot_starve(self):
        policy = WeightedFairShareSquish(min_proportion_ppt=5)
        requests = [
            SquishRequest(1, 900, importance=0.001),
            SquishRequest(2, 900, importance=1_000.0),
        ]
        grants = policy.squish(requests, available_ppt=500)
        assert grants[1] >= 5

    def test_equal_importance_reduces_to_fair_share(self):
        weighted = WeightedFairShareSquish()
        fair = FairShareSquish()
        requests = [SquishRequest(1, 600), SquishRequest(2, 300)]
        assert weighted.squish(requests, 450) == fair.squish(requests, 450)

    def test_capped_request_redistributes(self):
        policy = WeightedFairShareSquish()
        requests = [
            SquishRequest(1, 100, importance=10.0),  # wants little, high importance
            SquishRequest(2, 900, importance=1.0),
        ]
        grants = policy.squish(requests, available_ppt=600)
        assert grants[1] == 100          # capped at its own desire
        assert grants[2] >= 400          # leftover goes to the other request


class TestAdmissionControl:
    def test_accepts_within_threshold(self):
        config = ControllerConfig(admission_threshold_ppt=800)
        check_admission(config, existing_real_time_ppt=300, requested_ppt=400,
                        thread_name="rt")

    def test_rejects_over_threshold(self):
        config = ControllerConfig(admission_threshold_ppt=800)
        with pytest.raises(AdmissionError) as excinfo:
            check_admission(config, existing_real_time_ppt=700, requested_ppt=200,
                            thread_name="rt")
        assert excinfo.value.requested_ppt == 200
        assert excinfo.value.available_ppt == 100
        assert "rt" in str(excinfo.value)

    def test_exact_fit_accepted(self):
        config = ControllerConfig(admission_threshold_ppt=800)
        check_admission(config, existing_real_time_ppt=600, requested_ppt=200,
                        thread_name="rt")
