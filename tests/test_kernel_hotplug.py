"""CPU hotplug (fail/recover) semantics and mid-batch edge regressions.

The second half is the forced-exit audit: ``kill_thread`` and
``fail_cpu`` arriving via calendar events that land *inside* a horizon
batch window must produce bit-identical behaviour to the quantum
oracle, because batches break at event boundaries.  Calling either from
inside a dispatch round (which the calendar can never do) is rejected.
"""

from __future__ import annotations

import pytest

from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import SimulationError
from repro.sim.kernel import Kernel

from tests.conftest import finite_body, spin_body


def make_kernel(n_cpus=2, engine="quantum", **kwargs) -> Kernel:
    defaults = dict(
        charge_dispatch_overhead=False, syscall_cost_us=0,
        record_dispatches=True,
    )
    defaults.update(kwargs)
    return Kernel(
        RoundRobinScheduler(), n_cpus=n_cpus, engine=engine, **defaults
    )


class TestFailRecover:
    def test_fail_drains_pinned_threads_and_recover_restores(self):
        kernel = make_kernel(n_cpus=3)
        pinned = kernel.spawn("pinned", spin_body(), affinity=2)
        free = kernel.spawn("free", spin_body())
        kernel.run_for(5_000)
        drained = kernel.fail_cpu(2)
        assert drained == [pinned]
        assert pinned.affinity == 0  # lowest-numbered online CPU
        assert kernel.online_cpu_indices() == (0, 1)
        kernel.run_for(5_000)
        restored = kernel.recover_cpu(2)
        assert restored == [pinned]
        assert pinned.affinity == 2
        assert free.affinity is None

    def test_drained_thread_repinned_elsewhere_keeps_new_pin(self):
        kernel = make_kernel(n_cpus=3)
        pinned = kernel.spawn("pinned", spin_body(), affinity=2)
        kernel.run_for(2_000)
        kernel.fail_cpu(2)
        pinned.pin_to(1)  # the workload re-pins while the CPU is down
        kernel.run_for(2_000)
        restored = kernel.recover_cpu(2)
        assert restored == []
        assert pinned.affinity == 1

    def test_offline_cpu_accrues_offline_not_idle(self):
        kernel = make_kernel(n_cpus=2)
        kernel.spawn("w", spin_body())
        kernel.run_for(10_000)
        kernel.fail_cpu(1)
        idle_before = kernel.cpu_states[1].idle_us
        kernel.run_for(10_000)
        assert kernel.cpu_states[1].idle_us == idle_before
        assert kernel.cpu_states[1].offline_us == 10_000
        assert kernel.offline_us == 10_000
        # Conservation with the offline term.
        assert (
            kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
            + kernel.offline_us == kernel.capacity_us()
        )

    def test_capacity_listeners_fire_on_both_transitions(self):
        kernel = make_kernel(n_cpus=2)
        kernel.spawn("w", spin_body())
        calls = []
        kernel.add_capacity_listener(
            lambda now, online: calls.append((now, online))
        )
        kernel.run_for(3_000)
        kernel.fail_cpu(1)
        kernel.run_for(3_000)
        kernel.recover_cpu(1)
        assert calls == [(3_000, 1), (6_000, 2)]

    def test_error_guards(self):
        kernel = make_kernel(n_cpus=2)
        with pytest.raises(SimulationError, match="kernel has 2"):
            kernel.fail_cpu(5)
        with pytest.raises(SimulationError, match="kernel has 2"):
            kernel.recover_cpu(-1)
        with pytest.raises(SimulationError, match="already online"):
            kernel.recover_cpu(1)
        kernel.fail_cpu(1)
        with pytest.raises(SimulationError, match="already offline"):
            kernel.fail_cpu(1)
        with pytest.raises(SimulationError, match="last online CPU"):
            kernel.fail_cpu(0)

    def test_cannot_hotplug_mid_round(self):
        kernel = make_kernel(n_cpus=2)
        kernel._now_override = 100  # simulate being inside a dispatch
        with pytest.raises(SimulationError, match="inside a dispatch round"):
            kernel.fail_cpu(1)
        kernel._now_override = None
        kernel.fail_cpu(1)
        kernel._now_override = 100
        with pytest.raises(SimulationError, match="inside a dispatch round"):
            kernel.recover_cpu(1)
        kernel._now_override = None

    def test_add_thread_rejects_pin_to_offline_cpu(self):
        kernel = make_kernel(n_cpus=2)
        kernel.fail_cpu(1)
        with pytest.raises(SimulationError, match="offline"):
            kernel.spawn("w", spin_body(), affinity=1)

    def test_pin_to_offline_cpu_rejected(self):
        kernel = make_kernel(n_cpus=2)
        thread = kernel.spawn("w", spin_body())
        kernel.fail_cpu(1)
        with pytest.raises(Exception, match="offline"):
            thread.pin_to(1)


def _observe(kernel):
    return (
        tuple(kernel.dispatch_log),
        {
            t.name: (t.accounting.total_us, t.state.value, t.affinity)
            for t in kernel.threads
        },
        (kernel.now, kernel.idle_us, kernel.offline_us),
    )


class TestMidBatchEdges:
    """Kill and hotplug events landing inside horizon batch windows."""

    @pytest.mark.parametrize("scheduler_cls", [RoundRobinScheduler,
                                               ReservationScheduler])
    def test_kill_during_batch_matches_oracle(self, scheduler_cls):
        # Long bursts give the horizon engine big batch windows; the
        # kill at an odd time must break the batch identically.
        def build(engine):
            kernel = Kernel(
                scheduler_cls(), n_cpus=2, engine=engine,
                charge_dispatch_overhead=False, syscall_cost_us=0,
                record_dispatches=True,
            )
            victim = kernel.spawn("victim", spin_body(25_000))
            kernel.spawn("other", spin_body(25_000))
            kernel.spawn("third", finite_body(40_000, 25_000))
            kernel.events.schedule(
                13_337, lambda: kernel.kill_thread(victim), label="kill"
            )
            return kernel, victim

        results = {}
        for engine in ("quantum", "horizon"):
            kernel, victim = build(engine)
            kernel.run_for(60_000)
            assert not victim.state.is_live
            results[engine] = _observe(kernel)
        assert results["quantum"] == results["horizon"]

    def test_fail_cpu_during_batch_matches_oracle(self):
        def build(engine):
            kernel = Kernel(
                RoundRobinScheduler(), n_cpus=4, engine=engine,
                charge_dispatch_overhead=False, syscall_cost_us=0,
                record_dispatches=True,
            )
            kernel.spawn("pinned", spin_body(25_000), affinity=1)
            for i in range(3):
                kernel.spawn(f"w{i}", spin_body(25_000))
            kernel.events.schedule(
                13_337, lambda: kernel.fail_cpu(1), label="fail"
            )
            kernel.events.schedule(
                41_221, lambda: kernel.recover_cpu(1), label="recover"
            )
            return kernel

        results = {}
        for engine in ("quantum", "horizon"):
            kernel = build(engine)
            kernel.run_for(80_000)
            assert kernel.online_cpu_count == 4
            results[engine] = _observe(kernel)
        assert results["quantum"] == results["horizon"]

    def test_kill_on_failed_cpus_thread_during_batch(self):
        """The drained thread is killed while its home CPU is down, and
        the CPU later recovers: nothing dangles, engines agree."""

        def build(engine):
            kernel = Kernel(
                RoundRobinScheduler(), n_cpus=2, engine=engine,
                charge_dispatch_overhead=False, syscall_cost_us=0,
                record_dispatches=True,
            )
            victim = kernel.spawn("victim", spin_body(25_000), affinity=1)
            kernel.spawn("other", spin_body(25_000))
            kernel.events.schedule(
                10_003, lambda: kernel.fail_cpu(1), label="fail"
            )
            kernel.events.schedule(
                20_011, lambda: kernel.kill_thread(victim), label="kill"
            )
            kernel.events.schedule(
                30_029, lambda: kernel.recover_cpu(1), label="recover"
            )
            return kernel, victim

        results = {}
        for engine in ("quantum", "horizon"):
            kernel, victim = build(engine)
            kernel.run_for(60_000)
            assert not victim.state.is_live
            # The dead thread's pin was not restored on recovery.
            results[engine] = _observe(kernel)
        assert results["quantum"] == results["horizon"]
