"""Unit tests for the analysis utilities."""

import math

import pytest

from repro.analysis.regression import linear_fit
from repro.analysis.response import step_response
from repro.analysis.results import ExperimentResult, format_table
from repro.analysis.series import (
    find_knee,
    mean_absolute_deviation,
    rate_from_cumulative,
    resample,
    sparkline,
)


class TestLinearFit:
    def test_perfect_line(self):
        xs = [0, 1, 2, 3, 4]
        ys = [2.0 + 3.0 * x for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(32.0)

    def test_noisy_line_r_squared_below_one(self):
        xs = list(range(10))
        ys = [2.0 * x + (1 if x % 2 else -1) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.slope == pytest.approx(2.0, abs=0.2)
        assert 0.9 < fit.r_squared < 1.0

    def test_flat_data(self):
        fit = linear_fit([0, 1, 2], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1.0])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1.0])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([2, 2, 2], [1.0, 2.0, 3.0])


class TestSeriesHelpers:
    def test_rate_from_cumulative(self):
        times = [0.0, 1.0, 2.0, 3.0]
        cumulative = [0.0, 100.0, 300.0, 300.0]
        mid, rates = rate_from_cumulative(times, cumulative)
        assert rates == [100.0, 200.0, 0.0]
        assert mid == [0.5, 1.5, 2.5]

    def test_rate_skips_zero_intervals(self):
        times = [0.0, 1.0, 1.0, 2.0]
        cumulative = [0.0, 10.0, 10.0, 30.0]
        _, rates = rate_from_cumulative(times, cumulative)
        assert rates == [10.0, 20.0]

    def test_rate_length_mismatch(self):
        with pytest.raises(ValueError):
            rate_from_cumulative([0.0], [1.0, 2.0])

    def test_resample_zero_order_hold(self):
        times = [0.0, 1.0, 2.5]
        values = [1.0, 2.0, 3.0]
        grid, out = resample(times, values, step_s=0.5)
        assert grid[0] == 0.0
        assert out[:3] == [1.0, 1.0, 2.0]
        assert out[-1] == 3.0

    def test_resample_empty(self):
        assert resample([], [], 0.5) == ([], [])

    def test_resample_invalid_step(self):
        with pytest.raises(ValueError):
            resample([0.0], [1.0], 0.0)

    def test_mean_absolute_deviation(self):
        assert mean_absolute_deviation([0.4, 0.6], 0.5) == pytest.approx(0.1)
        assert mean_absolute_deviation([], 0.5) == 0.0

    def test_find_knee_on_synthetic_curve(self):
        # Flat then falling: the knee is at the corner.
        xs = list(range(10))
        ys = [1.0] * 5 + [1.0 - 0.2 * i for i in range(1, 6)]
        assert find_knee(xs, ys) in (4, 5)

    def test_find_knee_needs_three_points(self):
        with pytest.raises(ValueError):
            find_knee([1, 2], [1.0, 2.0])

    def test_sparkline_length_and_range(self):
        values = [math.sin(i / 5) for i in range(200)]
        line = sparkline(values, width=50)
        assert len(line) == 50

    def test_sparkline_flat(self):
        assert set(sparkline([1.0, 1.0, 1.0])) == {"▁"}

    def test_sparkline_empty(self):
        assert sparkline([]) == ""


class TestStepResponse:
    def _exponential_step(self, tau=0.2, step_at=1.0, end=4.0, dt=0.01):
        times, values = [], []
        t = 0.0
        while t <= end:
            times.append(t)
            if t < step_at:
                values.append(0.0)
            else:
                values.append(1.0 - math.exp(-(t - step_at) / tau))
            t += dt
        return times, values

    def test_rise_time_of_exponential(self):
        times, values = self._exponential_step(tau=0.2)
        response = step_response(times, values, 1.0)
        # 90% rise of a first-order lag is ~2.3 tau.
        assert response.rise_time_s == pytest.approx(0.46, abs=0.05)
        assert response.overshoot_fraction == pytest.approx(0.0, abs=0.05)
        assert response.responded

    def test_settling_time_reported(self):
        times, values = self._exponential_step(tau=0.1)
        response = step_response(times, values, 1.0)
        assert response.settling_time_s is not None
        assert response.settling_time_s < 1.0

    def test_no_response_detected(self):
        times = [i * 0.01 for i in range(400)]
        values = [0.0] * 400
        response = step_response(times, values, 1.0, target_value=1.0)
        assert response.rise_time_s is None
        assert not response.responded

    def test_overshoot_measured(self):
        times = [i * 0.01 for i in range(300)]
        values = []
        for t in times:
            if t < 1.0:
                values.append(0.0)
            elif t < 1.2:
                values.append(1.5)
            else:
                values.append(1.0)
        response = step_response(times, values, 1.0, target_value=1.0)
        assert response.overshoot_fraction == pytest.approx(0.5, abs=0.05)

    def test_requires_data_around_step(self):
        with pytest.raises(ValueError):
            step_response([0.0, 0.1], [1.0, 1.0], 5.0)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            step_response([], [], 0.0)


class TestExperimentResult:
    def test_metric_lookup(self):
        result = ExperimentResult("x", "title", metrics={"a": 1.0})
        assert result.metric("a") == 1.0
        with pytest.raises(KeyError):
            result.metric("missing")

    def test_comparison_rows_include_paper_values(self):
        result = ExperimentResult(
            "x", "t", metrics={"a": 1.0, "b": 2.0}, paper_values={"a": 1.1}
        )
        rows = dict((name, (paper, measured)) for name, paper, measured in
                    result.comparison_rows())
        assert rows["a"] == (1.1, 1.0)
        assert rows["b"] == (None, 2.0)

    def test_add_series_and_summary(self):
        result = ExperimentResult("x", "t", metrics={"a": 1.0})
        result.add_series("s", [0.0, 1.0], [2.0, 3.0])
        result.notes.append("a note")
        text = result.summary()
        assert "[x]" in text
        assert "a note" in text
        assert result.series["s"] == ([0.0, 1.0], [2.0, 3.0])

    def test_format_table_alignment(self):
        table = format_table([("metric_one", 1.0, 2.0), ("m2", None, 0.5)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "metric_one" in lines[2] or "metric_one" in lines[1]
