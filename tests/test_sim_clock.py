"""Unit tests for the virtual clock and time helpers."""

import pytest

from repro.sim.clock import (
    US_PER_MS,
    US_PER_SEC,
    SimClock,
    ms,
    seconds,
    to_ms,
    to_seconds,
)


class TestConversions:
    def test_ms_converts_to_microseconds(self):
        assert ms(1) == 1_000
        assert ms(2.5) == 2_500

    def test_seconds_converts_to_microseconds(self):
        assert seconds(1) == 1_000_000
        assert seconds(0.25) == 250_000

    def test_round_trip_seconds(self):
        assert to_seconds(seconds(3.5)) == pytest.approx(3.5)

    def test_round_trip_ms(self):
        assert to_ms(ms(42)) == pytest.approx(42.0)

    def test_constants_are_consistent(self):
        assert US_PER_SEC == 1_000 * US_PER_MS


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0

    def test_custom_start(self):
        assert SimClock(start=500).now == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(1_000)
        assert clock.now == 1_000

    def test_advance_to_same_time_is_allowed(self):
        clock = SimClock()
        clock.advance_to(100)
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_backwards_rejected(self):
        clock = SimClock()
        clock.advance_to(100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_advance_by_accumulates(self):
        clock = SimClock()
        clock.advance_by(10)
        clock.advance_by(15)
        assert clock.now == 25

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1)

    def test_now_seconds(self):
        clock = SimClock()
        clock.advance_to(2_500_000)
        assert clock.now_seconds == pytest.approx(2.5)
