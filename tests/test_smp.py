"""Multi-CPU kernel, placement and capacity-scaled admission tests."""

import pytest

from repro.core.allocator import ProportionAllocator
from repro.core.config import PROPORTION_SCALE, ControllerConfig
from repro.core.errors import AdmissionError
from repro.core.taxonomy import ThreadSpec
from repro.ipc.registry import SymbioticRegistry
from repro.sched.placement import LeastLoadedPlacement, PinnedPlacement
from repro.sched.rbs import ReservationScheduler
from repro.sched.round_robin import RoundRobinScheduler
from repro.sim.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute
from repro.sim.thread import SimThread
from repro.system import build_real_rate_system
from repro.workloads.webfarm import WebFarm

from tests.conftest import finite_body, spin_body


def make_kernel(n_cpus, scheduler=None):
    return Kernel(
        scheduler if scheduler is not None else RoundRobinScheduler(),
        n_cpus=n_cpus,
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
    )


class TestKernelSMP:
    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            Kernel(RoundRobinScheduler(), n_cpus=0)

    def test_two_cpus_run_two_hogs_in_parallel(self):
        kernel = make_kernel(2)
        a = kernel.spawn("a", spin_body())
        b = kernel.spawn("b", spin_body())
        kernel.run_for(50_000)
        # Both hogs get a full CPU each: twice the work of one CPU.
        assert a.accounting.total_us == 50_000
        assert b.accounting.total_us == 50_000
        assert kernel.idle_us == 0

    def test_single_thread_leaves_other_cpus_idle(self):
        kernel = make_kernel(4)
        t = kernel.spawn("solo", spin_body())
        kernel.run_for(10_000)
        assert t.accounting.total_us == 10_000
        # 3 CPUs idle the whole run.
        assert kernel.idle_us == 30_000
        per_cpu = sorted(c.idle_us for c in kernel.cpu_states)
        assert per_cpu == [0, 10_000, 10_000, 10_000]

    def test_conservation_identity_holds_on_smp(self):
        kernel = make_kernel(3)
        kernel.spawn("a", finite_body(20_000))
        kernel.spawn("b", finite_body(5_000))
        kernel.run_for(40_000)
        assert (
            kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
            == kernel.n_cpus * kernel.now
        )

    def test_per_cpu_dispatch_counts_aggregate(self):
        kernel = make_kernel(2)
        kernel.spawn("a", spin_body())
        kernel.spawn("b", spin_body())
        kernel.run_for(10_000)
        assert kernel.dispatch_count == sum(c.dispatches for c in kernel.cpu_states)
        assert all(c.dispatches > 0 for c in kernel.cpu_states)

    def test_pinned_threads_never_migrate(self):
        kernel = Kernel(
            RoundRobinScheduler(),
            n_cpus=2,
            charge_dispatch_overhead=False,
            syscall_cost_us=0,
            record_dispatches=True,
        )
        kernel.spawn("pinned0", spin_body(), affinity=0)
        kernel.spawn("pinned1", spin_body(), affinity=1)
        kernel.run_for(20_000)
        for _, cpu, name, _, _ in kernel.dispatch_log:
            assert cpu == int(name[-1])

    def test_pin_beyond_cpu_count_rejected(self):
        kernel = make_kernel(2)
        with pytest.raises(SimulationError):
            kernel.spawn("bad", spin_body(), affinity=2)

    def test_negative_affinity_rejected(self):
        with pytest.raises(ValueError):
            SimThread("bad", affinity=-1)


class TestPlacement:
    def _threads(self, n):
        return [SimThread(f"t{i}") for i in range(n)]

    def test_least_loaded_balances_equal_weights(self):
        threads = self._threads(4)
        mapping = LeastLoadedPlacement().assign(threads, 2, lambda t: 1.0)
        per_cpu = [sum(1 for c in mapping.values() if c == i) for i in range(2)]
        assert per_cpu == [2, 2]

    def test_least_loaded_balances_by_weight(self):
        threads = self._threads(3)
        weights = {threads[0].tid: 900.0, threads[1].tid: 500.0,
                   threads[2].tid: 400.0}
        mapping = LeastLoadedPlacement().assign(
            threads, 2, lambda t: weights[t.tid]
        )
        # Heaviest goes alone; the two lighter ones share the other CPU.
        assert mapping[threads[0].tid] != mapping[threads[1].tid]
        assert mapping[threads[1].tid] == mapping[threads[2].tid]

    def test_least_loaded_honours_affinity(self):
        threads = self._threads(3)
        threads[0].pin_to(1)
        mapping = LeastLoadedPlacement().assign(threads, 2, lambda t: 1.0)
        assert mapping[threads[0].tid] == 1

    def test_pinned_placement_is_static(self):
        threads = self._threads(4)
        threads[2].pin_to(0)
        mapping = PinnedPlacement().assign(threads, 2, lambda t: 1.0)
        assert mapping[threads[2].tid] == 0
        for t in (threads[0], threads[1], threads[3]):
            assert mapping[t.tid] == t.tid % 2

    def test_rbs_placement_weight_uses_reservation(self):
        scheduler = ReservationScheduler()
        kernel = make_kernel(2, scheduler)
        heavy = kernel.spawn("heavy", spin_body())
        light = kernel.spawn("light", spin_body())
        scheduler.set_reservation(heavy, 800, 10_000)
        scheduler.set_reservation(light, 100, 10_000)
        assert scheduler.placement_weight(heavy) == 800.0
        assert scheduler.placement_weight(light) == 100.0


class TestCapacityScaling:
    def test_reservation_scheduler_capacity(self):
        scheduler = ReservationScheduler()
        make_kernel(4, scheduler)
        assert scheduler.capacity_ppt() == 4 * PROPORTION_SCALE

    def test_total_reservations_can_exceed_one_cpu_on_smp(self):
        system = build_real_rate_system(n_cpus=4)
        for i in range(3):
            system.spawn_controlled(
                f"rt{i}", spin_body(),
                spec=ThreadSpec(proportion_ppt=700, period_us=10_000),
            )
        # 2100 ppt admitted: impossible on one CPU, fine on four.
        assert system.scheduler.total_reserved_ppt() == 2_100

    def test_admission_rejects_single_thread_beyond_one_cpu(self):
        system = build_real_rate_system(n_cpus=4)
        with pytest.raises(AdmissionError):
            system.spawn_controlled(
                "huge", spin_body(),
                spec=ThreadSpec(proportion_ppt=950, period_us=10_000),
            )

    def test_admission_rejects_beyond_scaled_total(self):
        system = build_real_rate_system(n_cpus=2)
        for i in range(2):
            system.spawn_controlled(
                f"rt{i}", spin_body(),
                spec=ThreadSpec(proportion_ppt=800, period_us=10_000),
            )
        with pytest.raises(AdmissionError):
            system.spawn_controlled(
                "overflow", spin_body(),
                spec=ThreadSpec(proportion_ppt=400, period_us=10_000),
            )

    def test_admission_rejects_unpackable_unpinned_set(self):
        # 5 x 640 ppt totals 3200 < 3600, but five reservations cannot
        # be packed onto four CPUs without one CPU exceeding capacity:
        # the partitioned admission test must reject the fifth.
        system = build_real_rate_system(n_cpus=4)
        for i in range(4):
            system.spawn_controlled(
                f"rt{i}", spin_body(),
                spec=ThreadSpec(proportion_ppt=640, period_us=10_000),
            )
        with pytest.raises(AdmissionError):
            system.spawn_controlled(
                "rt4", spin_body(),
                spec=ThreadSpec(proportion_ppt=640, period_us=10_000),
            )

    def test_pin_after_add_validates_cpu_range(self):
        kernel = make_kernel(2)
        thread = kernel.spawn("t", spin_body())
        with pytest.raises(ValueError):
            thread.pin_to(7)
        thread.pin_to(1)  # in range: fine
        assert thread.affinity == 1

    def test_per_cpu_admission_for_pinned_threads(self):
        system = build_real_rate_system(n_cpus=2)
        system.spawn_controlled(
            "pinned_a", spin_body(),
            spec=ThreadSpec(proportion_ppt=600, period_us=10_000),
            affinity=0,
        )
        # Another 600 ppt fits the aggregate budget (1800) but not
        # CPU 0's own 900 ppt admission threshold.
        with pytest.raises(AdmissionError):
            system.spawn_controlled(
                "pinned_b", spin_body(),
                spec=ThreadSpec(proportion_ppt=600, period_us=10_000),
                affinity=0,
            )
        # The same reservation pinned to the other CPU is admitted.
        system.spawn_controlled(
            "pinned_c", spin_body(),
            spec=ThreadSpec(proportion_ppt=600, period_us=10_000),
            affinity=1,
        )

    def test_overload_squish_uses_scaled_threshold(self):
        # Demand beyond one CPU's threshold is NOT squished on 4 CPUs.
        system = build_real_rate_system(n_cpus=4)
        farm = WebFarm.attach(system, n_servers=6, requests_per_second=150.0,
                              service_cpu_us=1_500)
        system.run_for(1_000_000)
        decisions = system.driver.last_decisions
        assert decisions
        total_granted = sum(d.granted_ppt for d in decisions)
        assert total_granted <= system.allocator.config.overload_threshold_total_ppt(4)

    def test_smp_farm_outperforms_single_cpu(self):
        def throughput(n_cpus):
            system = build_real_rate_system(n_cpus=n_cpus)
            farm = WebFarm.attach(system, n_servers=6,
                                  requests_per_second=150.0,
                                  service_cpu_us=1_500)
            system.run_for(1_500_000)
            return farm.total_served()

        assert throughput(4) > 1.3 * throughput(1)
