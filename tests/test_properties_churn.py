"""Property-based churn invariants (the open-system engine contract).

Hypothesis generates random open-system workloads — arrival streams of
every shape, finite jobs with varied demands, reservations, pins, and
phase-scripted kills / re-pins / rate changes / retimes — and asserts
the invariants that must survive any such sequence:

* **conservation** — ``total_thread_cpu + idle + stolen == n_cpus * now``
  at every checkpoint, so churn never leaks or double-charges time;
* **no lost, no double-dispatched threads** — every non-rejected
  arrival exists exactly once, stream bookkeeping adds up
  (``spawned == completed + killed + live``), nothing is dispatched
  after it exited, and no SMP round dispatches one thread on two CPUs;
* **engine equivalence** — the quantum-sliced oracle and the
  run-to-horizon engine produce bit-identical dispatch logs, thread
  accounting and kernel totals for the identical churn sequence.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.workloads.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.workloads.engine import JobTemplate, PhaseScript, WorkloadEngine

DURATION_US = 90_000

#: One arrival stream: (shape, rate knob, template knobs, reservation).
stream_specs = st.lists(
    st.tuples(
        st.sampled_from(["poisson", "deterministic", "mmpp", "herd"]),
        st.integers(min_value=60, max_value=400),      # arrivals per second
        st.integers(min_value=200, max_value=6_000),   # total_cpu_us
        st.integers(min_value=100, max_value=2_000),   # burst_us
        st.sampled_from([0, 0, 400, 1_500]),           # think_us
        st.sampled_from([0, 0, 800]),                  # io_latency_us
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=20, max_value=300),
                st.sampled_from([5_000, 10_000, 20_000]),
            ),
        ),
        st.booleans(),                                 # pin round-robin?
    ),
    min_size=1,
    max_size=3,
)

#: Phase actions: (at_us, kind, small parameter).
action_specs = st.lists(
    st.tuples(
        st.integers(min_value=10_000, max_value=DURATION_US - 10_000),
        st.sampled_from(["kill", "repin", "rate", "retime", "reserve"]),
        st.integers(min_value=1, max_value=4),
    ),
    max_size=4,
)


def build_churn(engine, n_cpus, specs, actions):
    """One deterministic churn run; returns (kernel, workload engine)."""
    kernel = Kernel(
        ReservationScheduler(), n_cpus=n_cpus, record_dispatches=True,
        engine=engine,
    )
    churn = WorkloadEngine(kernel)
    streams = []
    for i, (shape, rate, total, burst, think, io, reservation, pin) in enumerate(
        specs
    ):
        template = JobTemplate(
            f"t{i}",
            total_cpu_us=total,
            burst_us=burst,
            think_us=think,
            io_latency_us=io,
            reservation=reservation,
            pin=(lambda idx, n=n_cpus: idx % n) if pin else None,
            priority=1 + i % 3,
            tickets=50 + 40 * i,
            nice=(i % 3) - 1,
        )
        if shape == "poisson":
            arrivals = PoissonArrivals(float(rate), seed=100 + i)
        elif shape == "deterministic":
            arrivals = DeterministicArrivals(max(1, 1_000_000 // rate))
        elif shape == "mmpp":
            arrivals = MMPPArrivals(
                [(float(rate) * 3, 8_000), (0.0, 12_000)], seed=200 + i
            )
        else:  # herd: three waves of simultaneous arrivals
            wave = max(2, rate // 50)
            arrivals = TraceArrivals.from_times(
                w * 25_000 for w in range(3) for _ in range(wave)
            )
        streams.append(churn.add_stream(f"s{i}", arrivals, template))
    script = PhaseScript()
    for at_us, kind, knob in actions:
        stream = streams[knob % len(streams)]
        if kind == "kill":
            script.kill(at_us, stream, count=knob)
        elif kind == "repin":
            script.repin(at_us, stream, knob % n_cpus)
        elif kind == "rate":
            if isinstance(stream.arrivals, (PoissonArrivals, DeterministicArrivals)):
                script.set_rate(at_us, stream.arrivals, 30.0 * knob)
        elif kind == "retime":
            script.retime(
                at_us, stream.template,
                total_cpu_us=300 * knob, burst_us=150 * knob,
            )
        else:  # reserve
            script.set_reservation(at_us, stream, 40 * knob, 10_000)
    churn.start(script)
    return kernel, churn


def observe(kernel):
    accounting = {
        t.name: (
            t.accounting.total_us,
            t.accounting.dispatches,
            t.accounting.preemptions,
            t.accounting.blocks,
            t.accounting.sleeps,
            t.state.value,
        )
        for t in kernel.threads
    }
    totals = (
        kernel.now,
        kernel.idle_us,
        kernel.stolen_dispatch_us,
        kernel.dispatch_count,
        tuple(
            (c.idle_us, c.stolen_dispatch_us, c.dispatches)
            for c in kernel.cpu_states
        ),
    )
    return tuple(kernel.dispatch_log), accounting, totals


def assert_conserved(kernel):
    assert (
        kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
        == kernel.capacity_us()
    ), "conservation identity violated under churn"


def assert_no_lost_no_double(kernel, churn):
    # Stream bookkeeping adds up and every non-rejected arrival exists
    # exactly once in the kernel.
    by_name = {}
    for thread in kernel.threads:
        assert thread.name not in by_name, f"duplicate thread {thread.name}"
        by_name[thread.name] = thread
    for stream in churn.streams:
        assert stream.spawned == (
            stream.completed + stream.killed + len(stream.live)
        ), f"stream {stream.name} lost a job"
        assert stream.arrivals_seen() == stream.spawned + stream.rejected
        spawned_names = [
            name
            for name in by_name
            if name.startswith(stream.name + ".")
        ]
        assert len(spawned_names) == stream.spawned
    # Nothing is dispatched after it exited, and no two CPUs run the
    # same thread in one SMP round (same round start time).
    exited_at = {}
    last_round: dict[str, int] = {}
    round_members: dict[int, set] = {}
    for entry in kernel.dispatch_log:
        time_us, cpu, name, outcome, _consumed = entry
        assert name not in exited_at, (
            f"{name} dispatched at {time_us} after exiting at {exited_at[name]}"
        )
        if kernel.n_cpus > 1:
            members = round_members.setdefault(time_us, set())
            assert name not in members, (
                f"{name} double-dispatched in the round at {time_us}"
            )
            members.add(name)
            # Bound the book-keeping dict (logs can be long).
            if len(round_members) > 4:
                round_members.pop(min(round_members))
        if outcome == "exited":
            exited_at[name] = time_us
        last_round[name] = time_us
    # A killed thread never shows an 'exited' dispatch entry (it was
    # never dispatched again) but must not appear later either.
    for stream in churn.streams:
        assert stream.killed >= 0


@pytest.mark.parametrize("n_cpus", [1, 4])
@settings(max_examples=15, deadline=None)
@given(specs=stream_specs, actions=action_specs)
def test_churn_invariants_and_engine_equivalence(n_cpus, specs, actions):
    observations = {}
    for engine in ("quantum", "horizon"):
        kernel, churn = build_churn(engine, n_cpus, specs, actions)
        # Run in segments: conservation must hold at arbitrary
        # checkpoints, not just the end of the run.
        for _ in range(3):
            kernel.run_for(DURATION_US // 3)
            assert_conserved(kernel)
        assert_no_lost_no_double(kernel, churn)
        observations[engine] = observe(kernel)
    quantum, horizon = observations["quantum"], observations["horizon"]
    if horizon[0] != quantum[0]:
        for index, (h, q) in enumerate(zip(horizon[0], quantum[0])):
            assert h == q, f"dispatch log diverged at entry {index}: {h} != {q}"
        assert len(horizon[0]) == len(quantum[0]), "dispatch log length diverged"
    assert horizon[1] == quantum[1], "per-thread accounting diverged"
    assert horizon[2] == quantum[2], "kernel totals diverged"


@settings(max_examples=10, deadline=None)
@given(
    specs=stream_specs,
    kill_at=st.integers(min_value=5_000, max_value=60_000),
    checkpoint=st.integers(min_value=1_000, max_value=30_000),
)
def test_mass_kill_conserves_and_reclaims(specs, kill_at, checkpoint):
    """Killing *every* live job at once must conserve CPU time and
    leave the scheduler consistent enough to keep running arrivals."""
    kernel = Kernel(ReservationScheduler(), record_dispatches=True)
    churn = WorkloadEngine(kernel)
    streams = []
    for i, (shape, rate, total, burst, think, io, reservation, _pin) in enumerate(
        specs
    ):
        template = JobTemplate(
            f"t{i}", total_cpu_us=total, burst_us=burst, think_us=think,
            io_latency_us=io, reservation=reservation,
        )
        streams.append(
            churn.add_stream(
                f"s{i}", PoissonArrivals(float(rate), seed=300 + i), template
            )
        )
    script = PhaseScript()
    for stream in streams:
        script.kill(kill_at, stream)
    churn.start(script)
    kernel.run_for(kill_at + checkpoint)
    assert_conserved(kernel)
    assert_no_lost_no_double(kernel, churn)
    total_reserved = kernel.scheduler.total_reserved_ppt()
    live_reserved = sum(
        kernel.scheduler.reservation(t).proportion_ppt
        for s in churn.streams
        for t in s.live.values()
        if kernel.scheduler.reservation(t) is not None
    )
    assert total_reserved == live_reserved, (
        "exited jobs must release their reserved proportion"
    )
