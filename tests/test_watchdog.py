"""Unit tests for the runaway/stall watchdog (detection + quarantine)."""

from __future__ import annotations

import pytest

from repro.core.config import ControllerConfig
from repro.faults import RUNAWAY_START, FaultEvent, FaultInjector, FaultPlan
from repro.monitor.watchdog import Watchdog
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Sleep

from tests.conftest import spin_body


def make_kernel() -> Kernel:
    return Kernel(
        ReservationScheduler(),
        charge_dispatch_overhead=False,
        syscall_cost_us=0,
    )


def honest_body(burst_us: int = 1_000, think_us: int = 4_000):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(think_us)

    return body


def reserve(kernel, name, body, ppt, period_us=10_000):
    thread = kernel.spawn(name, body)
    kernel.scheduler.set_reservation(thread, ppt, period_us)
    return thread


class TestDetection:
    def test_runaway_quarantined_and_repromoted(self):
        kernel = make_kernel()
        victim = reserve(kernel, "victim", spin_body(), 200)
        # A competing honest reservation so the runaway's overdraft
        # actually misses deadlines.
        reserve(kernel, "honest", honest_body(), 300)
        watchdog = Watchdog(
            kernel, kernel.scheduler,
            period_us=10_000, miss_windows=2, quarantine_us=40_000,
        )
        kernel.run_for(100_000)
        assert watchdog.quarantine_count() >= 1
        first = watchdog.history[0]
        assert first.verdict == "runaway"
        assert first.tid == victim.tid
        assert first.proportion_ppt == 200
        assert first.released and first.repromoted
        # Re-promotion restored the original reservation (it may have
        # been re-quarantined afterwards; check the episode bookkeeping
        # rather than the instantaneous state).
        assert first.release_at_us == first.quarantined_at_us + 40_000

    def test_honest_thread_never_quarantined(self):
        kernel = make_kernel()
        reserve(kernel, "honest", honest_body(1_000, 4_000), 250)
        watchdog = Watchdog(kernel, kernel.scheduler, period_us=10_000)
        kernel.run_for(200_000)
        assert watchdog.quarantine_count() == 0

    def test_stalled_reservation_quarantined(self):
        kernel = make_kernel()

        def stalled(env):
            yield Compute(500)
            while True:
                yield Sleep(50_000)

        reserve(kernel, "sleeper", stalled, 300)
        # Keep a busy thread around so time advances realistically.
        kernel.spawn("busy", spin_body())
        watchdog = Watchdog(
            kernel, kernel.scheduler, period_us=10_000, stall_windows=3
        )
        kernel.run_for(100_000)
        verdicts = [record.verdict for record in watchdog.history]
        assert "stalled" in verdicts

    def test_backoff_doubles_per_offense(self):
        kernel = make_kernel()
        reserve(kernel, "victim", spin_body(), 200)
        reserve(kernel, "honest", honest_body(), 300)
        watchdog = Watchdog(
            kernel, kernel.scheduler,
            period_us=10_000, miss_windows=2, quarantine_us=20_000,
            max_quarantine_us=50_000,
        )
        kernel.run_for(400_000)
        lengths = [
            record.release_at_us - record.quarantined_at_us
            for record in watchdog.history
        ]
        assert lengths[0] == 20_000
        if len(lengths) > 1:
            assert lengths[1] == 40_000
        if len(lengths) > 2:
            # Doubling is capped.
            assert all(length <= 50_000 for length in lengths[2:])

    def test_watchdog_with_injected_runaway(self):
        """End-to-end: injector turns an honest reservation runaway; the
        watchdog sees only misses and CPU deltas, yet catches it."""
        kernel = make_kernel()
        victim = reserve(kernel, "victim", honest_body(), 200)
        reserve(kernel, "honest", honest_body(), 300)
        injector = FaultInjector(
            kernel,
            FaultPlan(
                events=(FaultEvent(30_000, RUNAWAY_START, thread="victim"),)
            ),
        )
        injector.install()
        watchdog = Watchdog(
            kernel, kernel.scheduler, period_us=10_000, miss_windows=2
        )
        kernel.run_for(120_000)
        assert watchdog.quarantine_count() >= 1
        record = watchdog.history[0]
        assert record.tid == victim.tid
        assert record.quarantined_at_us > 30_000


class TestLifecycle:
    def test_stop_cancels_tick(self):
        kernel = make_kernel()
        reserve(kernel, "victim", spin_body(), 200)
        reserve(kernel, "honest", honest_body(), 300)
        watchdog = Watchdog(
            kernel, kernel.scheduler, period_us=10_000, miss_windows=2
        )
        watchdog.stop()
        kernel.run_for(100_000)
        assert watchdog.quarantine_count() == 0

    def test_exited_victim_not_repromoted(self):
        kernel = make_kernel()
        victim = reserve(kernel, "victim", spin_body(), 200)
        reserve(kernel, "honest", honest_body(), 300)
        watchdog = Watchdog(
            kernel, kernel.scheduler,
            period_us=10_000, miss_windows=2, quarantine_us=50_000,
        )
        kernel.run_for(50_000)
        assert watchdog.quarantined_tids() == (victim.tid,)
        kernel.kill_thread(victim)
        kernel.run_for(100_000)
        record = watchdog.history[0]
        assert record.released
        assert not record.repromoted

    def test_constructor_validation(self):
        kernel = make_kernel()
        with pytest.raises(ValueError, match="period"):
            Watchdog(kernel, kernel.scheduler, period_us=0)
        with pytest.raises(ValueError, match="windows"):
            Watchdog(kernel, kernel.scheduler, miss_windows=0)
        with pytest.raises(ValueError, match="quarantine"):
            Watchdog(kernel, kernel.scheduler, quarantine_us=0)


class TestAllocatorPath:
    def test_quarantine_unregisters_from_controller(self):
        from repro.system import build_real_rate_system

        system = build_real_rate_system(
            ControllerConfig(),
            charge_dispatch_overhead=False,
            charge_controller_overhead=False,
        )
        kernel = system.kernel
        # Controlled hogs: the controller grows their reservations from
        # constant pressure, and two spinners oversubscribe one CPU.
        thread = system.spawn_controlled("hog", spin_body())
        watchdog = Watchdog(
            kernel, system.scheduler,
            allocator=system.allocator,
            period_us=10_000, miss_windows=2, quarantine_us=40_000,
        )
        competitor = system.spawn_controlled("rival", spin_body())
        kernel.run_for(150_000)
        if watchdog.quarantine_count():
            record = watchdog.history[0]
            # While quarantined the thread was out of the controller.
            assert record.verdict in ("runaway", "stalled")
        # The run must at least not crash the controller loop; both
        # threads are still live.
        assert thread.state.is_live and competitor.state.is_live
