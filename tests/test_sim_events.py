"""Unit tests for the event queue and periodic events."""

import pytest

from repro.sim.events import Event, EventQueue, PeriodicEvent


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.next_time() is None
        assert queue.pop_due(10_000) is None

    def test_schedule_and_pop(self):
        queue = EventQueue()
        fired = []
        queue.schedule(100, lambda: fired.append("a"))
        event = queue.pop_due(100)
        event.callback()
        assert fired == ["a"]

    def test_pop_due_respects_time(self):
        queue = EventQueue()
        queue.schedule(100, lambda: None)
        assert queue.pop_due(99) is None
        assert queue.pop_due(100) is not None

    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(300, lambda: order.append(3))
        queue.schedule(100, lambda: order.append(1))
        queue.schedule(200, lambda: order.append(2))
        while (event := queue.pop_due(1_000)) is not None:
            event.callback()
        assert order == [1, 2, 3]

    def test_same_time_events_fire_in_schedule_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(100, lambda: order.append("first"))
        queue.schedule(100, lambda: order.append("second"))
        queue.schedule(100, lambda: order.append("third"))
        while (event := queue.pop_due(100)) is not None:
            event.callback()
        assert order == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        event = queue.schedule(100, lambda: None)
        event.cancel()
        assert queue.pop_due(100) is None
        assert len(queue) == 0

    def test_next_time_ignores_cancelled(self):
        queue = EventQueue()
        first = queue.schedule(100, lambda: None)
        queue.schedule(200, lambda: None)
        first.cancel()
        assert queue.next_time() == 200

    def test_len_counts_live_events(self):
        queue = EventQueue()
        a = queue.schedule(1, lambda: None)
        queue.schedule(2, lambda: None)
        assert len(queue) == 2
        a.cancel()
        queue.next_time()  # triggers lazy cleanup
        assert len(queue) == 1

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1, lambda: None)
        queue.clear()
        assert not queue

    def test_peek_returns_earliest(self):
        queue = EventQueue()
        queue.schedule(50, lambda: None, label="later")
        queue.schedule(10, lambda: None, label="earlier")
        assert queue.peek().label == "earlier"


class TestPeriodicEvent:
    def _drain(self, queue, until):
        while True:
            event = queue.pop_due(until)
            if event is None:
                return
            event.callback()

    def test_fires_at_each_period(self):
        queue = EventQueue()
        times = []
        PeriodicEvent(queue, 100, lambda now: times.append(now))
        self._drain(queue, 350)
        assert times == [0, 100, 200, 300]

    def test_start_offset(self):
        queue = EventQueue()
        times = []
        PeriodicEvent(queue, 100, lambda now: times.append(now), start=50)
        self._drain(queue, 260)
        assert times == [50, 150, 250]

    def test_stop_prevents_future_firings(self):
        queue = EventQueue()
        times = []
        periodic = PeriodicEvent(queue, 100, lambda now: times.append(now))
        self._drain(queue, 150)
        periodic.stop()
        self._drain(queue, 1_000)
        assert times == [0, 100]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicEvent(EventQueue(), 0, lambda now: None)

    def test_period_can_be_changed(self):
        queue = EventQueue()
        times = []
        periodic = PeriodicEvent(queue, 100, lambda now: times.append(now))
        self._drain(queue, 100)
        # The occurrence already armed (at 200) keeps the old spacing;
        # the new period applies from the following occurrence.
        periodic.period = 200
        self._drain(queue, 500)
        assert times == [0, 100, 200, 400]
