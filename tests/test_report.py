"""Tests for the markdown report renderer and the ``report`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.report import (
    ReportError,
    load_report_artifact,
    render_report,
    render_result_report,
    render_sweep_report,
)
from repro.cli import main
from repro.experiments.registry import REGISTRY


def _artifact(**overrides):
    """A minimal single-result artifact in the wire form."""
    data = {
        "schema_version": 1,
        "repro_version": "0.0-test",
        "experiment_id": "demo",
        "title": "Demo experiment",
        "metrics": {"jobs_completed": 10.0, "admit_ratio": 0.5},
        "paper_values": {},
        "series": {"live": {"times": [0.0, 1.0, 2.0], "values": [1.0, 3.0, 2.0]}},
        "notes": ["a note"],
        "metadata": {
            "engine": "horizon",
            "seed": 7,
            "dispatch_fingerprint": "abc123",
            "sojourn_percentiles": {
                "all": {
                    "tag": "all", "completed": 10, "killed": 1, "rejected": 2,
                    "mean_us": 1_500.0, "min_us": 1_000, "max_us": 4_000,
                    "p50_us": 1_200, "p95_us": 3_000, "p99_us": 4_000,
                    "p999_us": 4_000,
                },
                "web": {
                    "tag": "web", "completed": 10, "killed": 1, "rejected": 2,
                    "mean_us": 1_500.0, "min_us": 1_000, "max_us": 4_000,
                    "p50_us": 1_200, "p95_us": 3_000, "p99_us": 4_000,
                    "p999_us": 4_000,
                },
            },
        },
    }
    data.update(overrides)
    return data


class TestRenderResult:
    def test_sections_present(self):
        markdown = render_result_report(_artifact())
        assert markdown.startswith("# Demo experiment\n")
        assert "- seed: `7`" in markdown
        assert "- dispatch fingerprint: `abc123`" in markdown
        assert "## Metrics" in markdown
        assert "| jobs_completed | 10 |" in markdown
        assert "## Sojourn percentiles by tag" in markdown
        assert "## Series" in markdown
        assert "## Notes" in markdown

    def test_percentile_table_renders_ms_and_order(self):
        markdown = render_result_report(_artifact())
        lines = markdown.splitlines()
        table = [l for l in lines if l.startswith("| all") or l.startswith("| web")]
        # Aggregate row first, then tags sorted.
        assert table[0].startswith("| all |")
        assert table[1].startswith("| web |")
        # 1200 us renders as 1.2 ms.
        assert "| 1.2 |" in table[0]

    def test_none_latencies_render_as_dash(self):
        artifact = _artifact()
        empty = {
            "tag": "dead", "completed": 0, "killed": 0, "rejected": 5,
            "mean_us": None, "min_us": None, "max_us": None,
            "p50_us": None, "p95_us": None, "p99_us": None, "p999_us": None,
        }
        artifact["metadata"]["sojourn_percentiles"]["dead"] = empty
        markdown = render_result_report(artifact)
        assert "| dead | 0 | 0 | 5 | — | — | — | — | — |" in markdown

    def test_response_curve_section(self):
        point = {
            "offered_per_s": 50.0, "tag": "w", "completed": 9, "killed": 0,
            "rejected": 0, "mean_us": 2_000.0, "min_us": 1_000,
            "max_us": 9_000, "p50_us": 2_000, "p95_us": 8_000,
            "p99_us": 9_000, "p999_us": 9_000,
        }
        points = [
            dict(point, offered_per_s=r, p99_us=p)
            for r, p in ((25.0, 3_000), (50.0, 4_000), (100.0, 20_000))
        ]
        artifact = _artifact()
        artifact["metadata"]["response_curve"] = points
        markdown = render_result_report(artifact)
        assert "## Response curve" in markdown
        assert "Knee of the p99 curve" in markdown
        assert "p99 vs load" in markdown

    def test_controllers_section(self):
        artifact = _artifact()
        artifact["metadata"]["controllers"] = {
            "pid": {
                "completed": 41, "rejected": 13, "admit_ratio": 0.76,
                "deadline_misses": 4, "final_job_ppt": 80,
                "dispatch_fingerprint": "fp-pid",
                "stats": {"mean_us": 41_000.0, "p99_us": 41_700},
            },
            "slo": {
                "completed": 43, "rejected": 12, "admit_ratio": 0.78,
                "deadline_misses": 0, "final_job_ppt": 160,
                "slo_adjustments": 8, "slo_violation_ticks": 8,
                "dispatch_fingerprint": "fp-slo",
                "stats": {"mean_us": 25_000.0, "p99_us": 40_800},
            },
        }
        markdown = render_result_report(artifact)
        assert "## Controller comparison" in markdown
        assert "| measure | pid | slo |" in markdown
        assert "| final per-job ppt | 80 | 160 |" in markdown
        # The pid pass has no SLO counters: the cell renders absent.
        assert "| SLO adjustments | — | 8 |" in markdown
        assert "`fp-pid`" in markdown and "`fp-slo`" in markdown

    def test_rendering_is_deterministic(self):
        artifact = _artifact()
        assert render_result_report(artifact) == render_result_report(
            json.loads(json.dumps(artifact, sort_keys=True))
        )

    def test_rejects_non_result_payload(self):
        with pytest.raises(ReportError, match="experiment_id"):
            render_result_report({"hello": "world"})


class TestRenderSweep:
    def test_sweep_renders_every_point(self):
        sweep = {
            "schema_version": 1,
            "kind": "sweep",
            "experiment": "demo",
            "grid": {"n_cpus": [1, 2]},
            "points": [
                {"params": {"n_cpus": 1}, "result": _artifact()},
                {"params": {"n_cpus": 2}, "result": _artifact()},
            ],
        }
        markdown = render_sweep_report(sweep)
        assert markdown.startswith("# Sweep: demo\n")
        assert markdown.count("## Point: n_cpus=") == 2
        # Point bodies have their headings demoted below the point's.
        assert "\n## Metrics" not in markdown
        assert "### Metrics" in markdown
        # render_report dispatches on the artifact kind.
        assert render_report(sweep) == markdown

    def test_render_report_dispatch(self):
        assert render_report(_artifact()).startswith("# Demo")
        with pytest.raises(ReportError, match="JSON object"):
            render_report(["not", "a", "mapping"])


class TestLoadArtifact:
    def test_load_errors_are_reporterrors(self, tmp_path):
        with pytest.raises(ReportError, match="cannot read"):
            load_report_artifact(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ReportError, match="not valid JSON"):
            load_report_artifact(str(bad))
        array = tmp_path / "array.json"
        array.write_text("[1, 2]")
        with pytest.raises(ReportError, match="JSON object"):
            load_report_artifact(str(array))


class TestReportCli:
    def test_report_stdout_and_file(self, tmp_path, capsys):
        artifact_path = tmp_path / "demo.json"
        artifact_path.write_text(json.dumps(_artifact()))
        assert main(["report", str(artifact_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Demo experiment")
        out_path = tmp_path / "demo.md"
        assert main(["report", str(artifact_path), "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("# Demo experiment")

    def test_report_bad_artifact_is_cli_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_run_then_report_round_trip(self, tmp_path, capsys):
        """The full pipeline: run --json, then report over the file."""
        path = tmp_path / "flash.json"
        assert main(["run", "flash_crowd_rt", "--quick",
                     "--json", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        markdown = capsys.readouterr().out
        assert "## Sojourn percentiles by tag" in markdown
        assert "| all |" in markdown and "| rt |" in markdown
        assert "dispatch fingerprint" in markdown

    def test_report_is_seed_deterministic(self, tmp_path, capsys):
        """Same seed, two runs: byte-identical reports."""
        renders = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(["run", "slo_flash_crowd", "--quick",
                         "--json", str(path)]) == 0
            capsys.readouterr()
            assert main(["report", str(path)]) == 0
            renders.append(capsys.readouterr().out)
        assert renders[0] == renders[1]
        assert "## Controller comparison" in renders[0]
