"""Golden-trace conformance: fresh runs must match the committed corpora.

Each corpus (``tests/golden/churn_smoke.json``,
``tests/golden/fault_smoke.json``) pins the full dispatch behaviour of
one golden scenario for every scheduler policy x both kernel engines x
1 and 4 CPUs.  A failure here means scheduling behaviour changed: if
intentional, refresh the corpora with ``python -m repro golden --regen``
and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import golden

GOLDEN_DIR = Path(__file__).parent / "golden"
SCENARIOS = sorted(golden.GOLDEN_SCENARIOS)


@pytest.fixture(scope="module")
def corpora() -> dict:
    return {
        name: golden.load_corpus(
            str(GOLDEN_DIR / Path(spec.corpus_path).name)
        )
        for name, spec in golden.GOLDEN_SCENARIOS.items()
    }


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_corpus_is_committed_and_complete(corpora, scenario):
    corpus = corpora[scenario]
    spec = golden.scenario_spec(scenario)
    assert corpus["scenario"] == scenario
    assert corpus["duration_us"] == spec.duration_us
    expected_keys = {golden.entry_key(*cell) for cell in golden.iter_matrix()}
    assert set(corpus["entries"]) == expected_keys
    # 5 schedulers x 2 engines x 2 CPU counts.
    assert len(corpus["entries"]) == 20


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("scheduler", sorted(golden.GOLDEN_SCHEDULERS))
def test_golden_traces_conform(corpora, scenario, scheduler):
    """Every (engine, n_cpus) cell of one scheduler matches the corpus."""
    corpus = corpora[scenario]
    mismatches = []
    for engine in golden.GOLDEN_ENGINES:
        for n_cpus in golden.GOLDEN_CPU_COUNTS:
            message = golden.verify_cell(corpus, scheduler, engine, n_cpus)
            if message is not None:
                mismatches.append(message)
    assert not mismatches, (
        f"golden-trace divergence in {scenario} (intentional? run "
        "`python -m repro golden --regen`):\n" + "\n".join(mismatches)
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_corpus_engines_agree(corpora, scenario):
    """Within each corpus itself, quantum and horizon cells are identical
    (the committed baseline must never encode an engine divergence) —
    under fault injection too."""
    corpus = corpora[scenario]
    for scheduler in golden.GOLDEN_SCHEDULERS:
        for n_cpus in golden.GOLDEN_CPU_COUNTS:
            quantum = corpus["entries"][
                golden.entry_key(scheduler, "quantum", n_cpus)
            ]
            horizon = corpus["entries"][
                golden.entry_key(scheduler, "horizon", n_cpus)
            ]
            assert quantum == horizon, (scenario, scheduler, n_cpus)


def test_corpus_cells_exercise_churn(corpora):
    """Every churn cell spawns, completes and kills jobs — a corpus cell
    that stopped churning would silently weaken the conformance check."""
    for key, entry in corpora["churn_smoke"]["entries"].items():
        assert entry["spawned"] > 0, key
        assert entry["completed"] > 0, key
        assert entry["killed"] > 0, key
        assert entry["dispatches"] > 0, key


def test_fault_corpus_cells_stay_busy(corpora):
    """Every fault cell keeps spawning and completing work around the
    injected faults (the hijacked victims themselves never complete)."""
    for key, entry in corpora["fault_smoke"]["entries"].items():
        assert entry["spawned"] > 0, key
        assert entry["completed"] > 0, key
        assert entry["dispatches"] > 0, key


def test_fault_scenario_exercises_faults():
    """The builder attaches a live injector whose plan covers a runaway,
    a stall and (multi-CPU) a fail/recover pair — guard against the
    scenario silently degenerating into plain churn."""
    from repro.faults import CPU_FAIL, RUNAWAY_START, STALL_START

    kernel, _churn = golden.build_fault_golden("rbs", "horizon", 4)
    labels = [
        event.label
        for event in kernel.events.pending()
        if event.label.startswith("fault:")
    ]
    assert f"fault:{RUNAWAY_START}" in labels
    assert f"fault:{STALL_START}" in labels
    assert f"fault:{CPU_FAIL}" in labels
    # The single-CPU variant must not try to fail its only CPU.
    kernel1, _ = golden.build_fault_golden("rbs", "horizon", 1)
    labels1 = [
        event.label
        for event in kernel1.events.pending()
        if event.label.startswith("fault:")
    ]
    assert f"fault:{CPU_FAIL}" not in labels1
    assert f"fault:{RUNAWAY_START}" in labels1


def test_verify_reports_divergence(monkeypatch, corpora):
    """A corrupted corpus entry is reported, not silently accepted.

    ``run_golden`` is stubbed to echo the committed entries so this
    exercises only the diff/reporting logic, not 20 more simulations.
    """
    corpus = corpora["churn_smoke"]
    broken = json.loads(json.dumps(corpus))
    key = golden.entry_key("rbs", "horizon", 1)
    broken["entries"][key]["dispatch_sha256"] = "0" * 64
    broken["entries"]["bogus/horizon/cpu9"] = {"dispatch_sha256": "x"}
    monkeypatch.setattr(
        golden,
        "run_golden",
        lambda scheduler, engine, n_cpus, scenario=golden.GOLDEN_SCENARIO: dict(
            corpus["entries"][golden.entry_key(scheduler, engine, n_cpus)]
        ),
    )
    messages = golden.verify_corpus(broken)
    assert any(key in message and "diverged" in message for message in messages)
    assert any("bogus" in message for message in messages)
    # A missing cell is reported too.
    del broken["entries"][key]
    assert any(
        "missing" in message for message in golden.verify_corpus(broken)
    )
    # An unknown scenario short-circuits instead of crashing.
    broken["scenario"] = "not_a_scenario"
    messages = golden.verify_corpus(broken)
    assert messages == [
        "not_a_scenario: unknown golden scenario "
        f"(known: {sorted(golden.GOLDEN_SCENARIOS)})"
    ]


def test_load_corpus_rejects_wrong_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"kind": "bench", "schema_version": 1}))
    with pytest.raises(ValueError, match="not a golden corpus"):
        golden.load_corpus(str(path))
    path.write_text(
        json.dumps({"kind": "golden_corpus", "schema_version": 99})
    )
    with pytest.raises(ValueError, match="schema version"):
        golden.load_corpus(str(path))


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown golden scenario"):
        golden.scenario_spec("nope")
    with pytest.raises(ValueError, match="unknown golden scenario"):
        golden.run_golden("rbs", "horizon", 1, scenario="nope")


def test_write_corpus_roundtrip(tmp_path, corpora):
    """``--regen`` output round-trips and matches the committed corpus
    (the full matrix was already re-simulated by the conform tests, so
    equality against the committed entries is the cheap way to assert
    it)."""
    path = tmp_path / "fresh.json"
    written = golden.write_corpus(str(path))
    loaded = golden.load_corpus(str(path))
    assert loaded == written
    assert written["entries"] == corpora["churn_smoke"]["entries"]
