"""Golden-trace conformance: fresh runs must match the committed corpus.

The corpus (``tests/golden/churn_smoke.json``) pins the full dispatch
behaviour of the golden churn scenario for every scheduler policy x
both kernel engines x 1 and 4 CPUs.  A failure here means scheduling
behaviour changed: if intentional, refresh the corpus with
``python -m repro golden --regen`` and commit the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import golden

CORPUS_PATH = Path(__file__).parent / "golden" / "churn_smoke.json"


@pytest.fixture(scope="module")
def corpus() -> dict:
    return golden.load_corpus(str(CORPUS_PATH))


def test_corpus_is_committed_and_complete(corpus):
    assert corpus["scenario"] == golden.GOLDEN_SCENARIO
    assert corpus["duration_us"] == golden.GOLDEN_DURATION_US
    expected_keys = {golden.entry_key(*cell) for cell in golden.iter_matrix()}
    assert set(corpus["entries"]) == expected_keys
    # 5 schedulers x 2 engines x 2 CPU counts.
    assert len(corpus["entries"]) == 20


@pytest.mark.parametrize("scheduler", sorted(golden.GOLDEN_SCHEDULERS))
def test_golden_traces_conform(corpus, scheduler):
    """Every (engine, n_cpus) cell of one scheduler matches the corpus."""
    mismatches = []
    for engine in golden.GOLDEN_ENGINES:
        for n_cpus in golden.GOLDEN_CPU_COUNTS:
            message = golden.verify_cell(corpus, scheduler, engine, n_cpus)
            if message is not None:
                mismatches.append(message)
    assert not mismatches, (
        "golden-trace divergence (intentional? run "
        "`python -m repro golden --regen`):\n" + "\n".join(mismatches)
    )


def test_corpus_engines_agree(corpus):
    """Within the corpus itself, quantum and horizon cells are identical
    (the committed baseline must never encode an engine divergence)."""
    for scheduler in golden.GOLDEN_SCHEDULERS:
        for n_cpus in golden.GOLDEN_CPU_COUNTS:
            quantum = corpus["entries"][
                golden.entry_key(scheduler, "quantum", n_cpus)
            ]
            horizon = corpus["entries"][
                golden.entry_key(scheduler, "horizon", n_cpus)
            ]
            assert quantum == horizon, (scheduler, n_cpus)


def test_corpus_cells_exercise_churn(corpus):
    """Every cell spawns, completes and kills jobs — a corpus cell that
    stopped churning would silently weaken the conformance check."""
    for key, entry in corpus["entries"].items():
        assert entry["spawned"] > 0, key
        assert entry["completed"] > 0, key
        assert entry["killed"] > 0, key
        assert entry["dispatches"] > 0, key


def test_verify_reports_divergence(monkeypatch, corpus):
    """A corrupted corpus entry is reported, not silently accepted.

    ``run_golden`` is stubbed to echo the committed entries so this
    exercises only the diff/reporting logic, not 20 more simulations.
    """
    broken = json.loads(json.dumps(corpus))
    key = golden.entry_key("rbs", "horizon", 1)
    broken["entries"][key]["dispatch_sha256"] = "0" * 64
    broken["entries"]["bogus/horizon/cpu9"] = {"dispatch_sha256": "x"}
    monkeypatch.setattr(
        golden,
        "run_golden",
        lambda *cell: dict(corpus["entries"][golden.entry_key(*cell)]),
    )
    messages = golden.verify_corpus(broken)
    assert any(key in message and "diverged" in message for message in messages)
    assert any("bogus" in message for message in messages)
    # A missing cell is reported too.
    del broken["entries"][key]
    assert any(
        "missing" in message for message in golden.verify_corpus(broken)
    )


def test_load_corpus_rejects_wrong_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"kind": "bench", "schema_version": 1}))
    with pytest.raises(ValueError, match="not a golden corpus"):
        golden.load_corpus(str(path))
    path.write_text(
        json.dumps({"kind": "golden_corpus", "schema_version": 99})
    )
    with pytest.raises(ValueError, match="schema version"):
        golden.load_corpus(str(path))


def test_write_corpus_roundtrip(tmp_path, corpus):
    """``--regen`` output round-trips and matches the committed corpus
    (the full matrix was already re-simulated by the conform tests, so
    equality against ``corpus`` is the cheap way to assert it)."""
    path = tmp_path / "fresh.json"
    written = golden.write_corpus(str(path))
    loaded = golden.load_corpus(str(path))
    assert loaded == written
    assert written["entries"] == corpus["entries"]
