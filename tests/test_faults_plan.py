"""Unit tests for the declarative fault plan (wire form + validation)."""

from __future__ import annotations

import json

import pytest

from repro.faults import (
    CPU_FAIL,
    CPU_RECOVER,
    FAULT_PLAN_SCHEMA_VERSION,
    RUNAWAY_START,
    RUNAWAY_STOP,
    SENSOR_CORRUPT,
    SENSOR_DROPOUT,
    STALL_START,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
)


class TestFaultEventValidation:
    def test_cpu_kinds_require_cpu(self):
        with pytest.raises(FaultPlanError, match="requires a cpu index"):
            FaultEvent(0, CPU_FAIL)
        with pytest.raises(FaultPlanError, match="targets a cpu"):
            FaultEvent(0, CPU_RECOVER, cpu=0, thread="w")
        with pytest.raises(FaultPlanError, match="cannot be negative"):
            FaultEvent(0, CPU_FAIL, cpu=-1)

    def test_thread_kinds_require_thread(self):
        with pytest.raises(FaultPlanError, match="requires a target thread"):
            FaultEvent(0, RUNAWAY_START)
        with pytest.raises(FaultPlanError, match="targets a thread"):
            FaultEvent(0, STALL_START, thread="w", cpu=1)

    def test_unknown_kind_and_negative_time(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent(0, "meteor_strike", thread="w")
        with pytest.raises(FaultPlanError, match="negative"):
            FaultEvent(-1, CPU_FAIL, cpu=0)

    def test_sensor_faults_need_duration_and_magnitude(self):
        with pytest.raises(FaultPlanError, match="requires duration_us"):
            FaultEvent(0, SENSOR_DROPOUT, thread="w")
        with pytest.raises(FaultPlanError, match="positive magnitude"):
            FaultEvent(0, SENSOR_CORRUPT, thread="w", duration_us=10)
        # Valid forms construct fine.
        FaultEvent(0, SENSOR_DROPOUT, thread="w", duration_us=10)
        FaultEvent(0, SENSOR_CORRUPT, thread="w", duration_us=10, magnitude=0.5)

    def test_duration_rules(self):
        with pytest.raises(FaultPlanError, match="must be positive"):
            FaultEvent(0, CPU_FAIL, cpu=0, duration_us=0)
        # Stop kinds are instantaneous: a duration is meaningless.
        with pytest.raises(FaultPlanError, match="instantaneous"):
            FaultEvent(0, RUNAWAY_STOP, thread="w", duration_us=5)
        # Start kinds may carry one (auto-schedules the stop).
        FaultEvent(0, RUNAWAY_START, thread="w", duration_us=5)
        FaultEvent(0, CPU_FAIL, cpu=0, duration_us=5)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(FaultPlanError, match="magnitude"):
            FaultEvent(0, RUNAWAY_START, thread="w", magnitude=-1.0)


class TestFaultPlan:
    def test_events_sorted_stably_by_time(self):
        a = FaultEvent(50, RUNAWAY_START, thread="a")
        b = FaultEvent(10, STALL_START, thread="b")
        c = FaultEvent(50, RUNAWAY_STOP, thread="c")
        plan = FaultPlan(events=(a, b, c))
        assert [e.thread for e in plan.events] == ["b", "a", "c"]
        assert len(plan) == 3

    def test_window_selects_half_open_range(self):
        plan = FaultPlan(
            events=tuple(
                FaultEvent(t, RUNAWAY_START, thread="w")
                for t in (0, 10, 20, 30)
            )
        )
        assert [e.at_us for e in plan.window(10, 30)] == [10, 20]

    def test_wire_roundtrip_is_exact(self):
        plan = FaultPlan(
            events=(
                FaultEvent(5_000, CPU_FAIL, cpu=2, duration_us=10_000),
                FaultEvent(7_000, SENSOR_CORRUPT, thread="decode",
                           duration_us=3_000, magnitude=1.25),
                FaultEvent(9_000, RUNAWAY_START, thread="hog"),
            ),
            seed=42,
        )
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["schema_version"] == FAULT_PLAN_SCHEMA_VERSION
        assert FaultPlan.from_dict(payload) == plan

    def test_to_dict_omits_unset_optionals(self):
        event = FaultEvent(0, CPU_FAIL, cpu=1)
        assert event.to_dict() == {"at_us": 0, "kind": CPU_FAIL, "cpu": 1}

    def test_from_dict_rejects_bad_payloads(self):
        with pytest.raises(FaultPlanError, match="schema version"):
            FaultPlan.from_dict({"schema_version": 999, "events": []})
        with pytest.raises(FaultPlanError, match="must be a list"):
            FaultPlan.from_dict(
                {"schema_version": FAULT_PLAN_SCHEMA_VERSION, "events": "nope"}
            )
        with pytest.raises(FaultPlanError, match="missing"):
            FaultEvent.from_dict({"kind": CPU_FAIL})

    def test_empty_plan_roundtrip(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert FaultPlan.from_dict(plan.to_dict()) == plan
