"""Property-based scheduler invariants over random workloads.

Hypothesis generates random thread mixes (spinners, burst-sleepers,
yielders, producer/consumer pairs), random reservations and random CPU
counts; the invariants below must hold for every one of them, on one
CPU and on several:

* a thread is only ever dispatched while runnable — never while
  BLOCKED, SLEEPING or EXITED;
* the global clock never moves backwards and the run ends exactly at
  the requested time;
* CPU time is conserved: thread CPU + idle + stolen equals
  ``n_cpus * elapsed``;
* reservations never deliver more than their proportion allows (plus
  the paper's one-dispatch-interval quantisation overrun per period);
* the controller never grants more total proportion than the kernel's
  capacity ``n_cpus * PROPORTION_SCALE``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PROPORTION_SCALE
from repro.core.taxonomy import ThreadSpec
from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sched.rbs import ReservationScheduler
from repro.sim.kernel import Kernel
from repro.sim.requests import Compute, Get, Put, Sleep, Yield
from repro.sim.thread import ThreadState
from repro.system import build_real_rate_system

RUN_US = 60_000


def _spinner(burst_us):
    def body(env):
        while True:
            yield Compute(burst_us)
    return body


def _burst_sleeper(burst_us, sleep_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Sleep(sleep_us)
    return body


def _yielder(burst_us):
    def body(env):
        while True:
            yield Compute(burst_us)
            yield Yield()
    return body


def _producer(queue, nbytes, compute_us):
    def body(env):
        while True:
            yield Compute(compute_us)
            yield Put(queue, nbytes)
    return body


def _consumer(queue, nbytes, compute_us):
    def body(env):
        while True:
            yield Get(queue, nbytes)
            yield Compute(compute_us)
    return body


thread_kinds = st.sampled_from(["spin", "burst_sleep", "yield", "pipe"])

workloads = st.lists(
    st.tuples(
        thread_kinds,
        st.integers(min_value=50, max_value=3_000),    # burst us
        st.integers(min_value=500, max_value=20_000),  # sleep us
        st.integers(min_value=0, max_value=400),       # reservation ppt
        st.integers(min_value=5_000, max_value=40_000),  # period us
    ),
    min_size=1,
    max_size=5,
)


def _build_threads(kernel, scheduler, entries):
    tid = 0
    for kind, burst, sleep_us, ppt, period in entries:
        tid += 1
        if kind == "spin":
            threads = [kernel.spawn(f"spin{tid}", _spinner(burst))]
        elif kind == "burst_sleep":
            threads = [kernel.spawn(f"bs{tid}", _burst_sleeper(burst, sleep_us))]
        elif kind == "yield":
            threads = [kernel.spawn(f"y{tid}", _yielder(burst))]
        else:
            queue = BoundedBuffer(f"q{tid}", 4_096)
            threads = [
                kernel.spawn(f"prod{tid}", _producer(queue, 256, burst)),
                kernel.spawn(f"cons{tid}", _consumer(queue, 256, burst)),
            ]
        if ppt > 0 and scheduler is not None:
            for thread in threads:
                scheduler.set_reservation(thread, ppt, period)


@given(n_cpus=st.sampled_from([1, 2, 4]), entries=workloads)
@settings(max_examples=25, deadline=None)
def test_kernel_invariants_over_random_workloads(n_cpus, entries):
    scheduler = ReservationScheduler()
    kernel = Kernel(
        scheduler,
        n_cpus=n_cpus,
        charge_dispatch_overhead=False,
        syscall_cost_us=1,
        deadlock_detection=False,
    )
    _build_threads(kernel, scheduler, entries)

    dispatched_states = []
    clock_samples = []
    original_dispatch = Kernel._dispatch

    def checked_dispatch(self, cpu, thread, t_end, window_cap=None):
        dispatched_states.append(thread.state)
        clock_samples.append(self.clock.now)
        return original_dispatch(self, cpu, thread, t_end, window_cap)

    Kernel._dispatch = checked_dispatch
    try:
        kernel.run_for(RUN_US)
    finally:
        Kernel._dispatch = original_dispatch

    # Only runnable threads are ever handed to the dispatcher.
    assert all(state.is_runnable for state in dispatched_states)
    forbidden = {ThreadState.BLOCKED, ThreadState.SLEEPING, ThreadState.EXITED}
    assert not forbidden.intersection(dispatched_states)

    # The global clock is monotone and the run ends exactly on time.
    assert clock_samples == sorted(clock_samples)
    assert kernel.now == RUN_US

    # CPU-time conservation across all CPUs.
    assert (
        kernel.total_thread_cpu_us() + kernel.idle_us + kernel.stolen_us
        == n_cpus * RUN_US
    )

    # No reservation thread exceeded its proportion by more than the
    # one-dispatch-interval overrun per elapsed period (Section 4.3).
    for thread in kernel.threads:
        reservation = scheduler.reservation(thread)
        if reservation is None or reservation.proportion_ppt == 0:
            continue
        periods = RUN_US // reservation.period_us + 1
        budget = periods * reservation.allocation_us
        overrun_allowance = periods * kernel.dispatch_interval_us
        assert thread.accounting.total_us <= budget + overrun_allowance

    # Total reserved proportion is within the kernel's capacity when
    # the draws happened to fit; it must never exceed what the draw
    # asked for in any case.
    assert scheduler.total_reserved_ppt() == sum(
        ppt * (2 if kind == "pipe" else 1)
        for kind, _, _, ppt, _ in entries
    )


controlled_specs = st.lists(
    st.tuples(
        st.sampled_from(["real_rate", "misc"]),
        st.integers(min_value=100, max_value=2_000),  # service burst us
    ),
    min_size=1,
    max_size=6,
)


@given(n_cpus=st.sampled_from([1, 2, 4]), specs=controlled_specs)
@settings(max_examples=15, deadline=None)
def test_controller_grants_never_exceed_capacity(n_cpus, specs):
    system = build_real_rate_system(
        n_cpus=n_cpus,
        charge_dispatch_overhead=False,
        charge_controller_overhead=False,
    )
    for index, (kind, burst) in enumerate(specs):
        if kind == "real_rate":
            queue = BoundedBuffer(f"cq{index}", 8_192)
            producer = system.spawn_controlled(
                f"p{index}",
                _producer(queue, 256, 2_000),
                spec=ThreadSpec(proportion_ppt=50, period_us=10_000),
            )
            consumer = system.spawn_controlled(
                f"c{index}", _consumer(queue, 256, burst), spec=ThreadSpec()
            )
            system.registry.register_pair(producer, consumer, queue)
        else:
            system.spawn_controlled(
                f"m{index}", _spinner(burst), spec=ThreadSpec()
            )

    grant_totals = []
    original_update = system.allocator.update

    def recording_update(now):
        decisions = original_update(now)
        grant_totals.append(sum(d.granted_ppt for d in decisions))
        return decisions

    system.allocator.update = recording_update
    system.run_for(RUN_US)

    capacity = n_cpus * PROPORTION_SCALE
    assert grant_totals, "controller should have run"
    assert all(total <= capacity for total in grant_totals)
