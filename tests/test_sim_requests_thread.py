"""Unit tests for request validation and the SimThread state machine."""

import pytest

from repro.ipc.bounded_buffer import BoundedBuffer
from repro.sim.errors import ThreadStateError
from repro.sim.requests import (
    Compute,
    Exit,
    Get,
    Put,
    Sleep,
    WaitIO,
    Yield,
)
from repro.sim.thread import (
    CpuAccounting,
    SchedulingPolicy,
    SimThread,
    ThreadState,
)


class TestRequestValidation:
    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_compute_coerces_to_int(self):
        assert Compute(10.0).us == 10

    def test_put_requires_positive_size(self):
        queue = BoundedBuffer("q", 100)
        with pytest.raises(ValueError):
            Put(queue, 0)

    def test_get_requires_positive_size(self):
        queue = BoundedBuffer("q", 100)
        with pytest.raises(ValueError):
            Get(queue, -5)

    def test_sleep_rejects_negative(self):
        with pytest.raises(ValueError):
            Sleep(-1)

    def test_waitio_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            WaitIO(-1)

    def test_exit_default_status(self):
        assert Exit().status == 0


class TestThreadStates:
    def test_runnable_states(self):
        assert ThreadState.READY.is_runnable
        assert ThreadState.RUNNING.is_runnable
        assert not ThreadState.BLOCKED.is_runnable
        assert not ThreadState.SLEEPING.is_runnable
        assert not ThreadState.EXITED.is_runnable

    def test_live_states(self):
        assert ThreadState.READY.is_live
        assert ThreadState.BLOCKED.is_live
        assert not ThreadState.EXITED.is_live


class TestSimThread:
    def test_unique_tids(self):
        a = SimThread("a")
        b = SimThread("b")
        assert a.tid != b.tid

    def test_equality_and_hash_by_tid(self):
        a = SimThread("a")
        assert a == a
        assert a != SimThread("a")
        assert len({a, a}) == 1

    def test_default_policy_is_reservation(self):
        assert SimThread("t").policy is SchedulingPolicy.RESERVATION

    def test_new_thread_state(self):
        assert SimThread("t").state is ThreadState.NEW

    def test_advance_requires_generator(self):
        thread = SimThread("external", body=None)
        with pytest.raises(ThreadStateError):
            thread.advance()

    def test_advance_yields_requests_in_order(self):
        def body(env):
            yield Compute(10)
            yield Yield()

        thread = SimThread("t", body)
        thread.bind(env=None)
        first = thread.advance()
        assert isinstance(first, Compute)
        assert thread.remaining_compute_us == 10
        thread.consume_compute(10)
        thread.finish_request()
        second = thread.advance()
        assert isinstance(second, Yield)

    def test_advance_returns_none_when_exhausted(self):
        def body(env):
            yield Compute(1)

        thread = SimThread("t", body)
        thread.bind(env=None)
        thread.advance()
        thread.consume_compute(1)
        thread.finish_request()
        assert thread.advance() is None

    def test_body_must_yield_requests(self):
        def body(env):
            yield "not a request"

        thread = SimThread("t", body)
        thread.bind(env=None)
        with pytest.raises(ThreadStateError):
            thread.advance()

    def test_consume_more_than_remaining_rejected(self):
        def body(env):
            yield Compute(5)

        thread = SimThread("t", body)
        thread.bind(env=None)
        thread.advance()
        with pytest.raises(ThreadStateError):
            thread.consume_compute(6)

    def test_inject_request_for_external_thread(self):
        thread = SimThread("external", body=None)
        thread.inject_request(Compute(100))
        assert thread.remaining_compute_us == 100


class TestCpuAccounting:
    def test_charge_accumulates(self):
        acct = CpuAccounting()
        acct.charge(100)
        acct.charge(50)
        assert acct.total_us == 150

    def test_run_before_block_ema_first_sample(self):
        acct = CpuAccounting()
        acct.charge(1_000)
        acct.note_block()
        assert acct.run_before_block_ema_us == pytest.approx(1_000)

    def test_run_before_block_ema_smooths(self):
        acct = CpuAccounting()
        acct.charge(1_000)
        acct.note_block()
        acct.charge(2_000)
        acct.note_block()
        # 0.25 * 2000 + 0.75 * 1000
        assert acct.run_before_block_ema_us == pytest.approx(1_250)

    def test_block_resets_running_counter(self):
        acct = CpuAccounting()
        acct.charge(500)
        acct.note_block()
        assert acct.run_since_last_block_us == 0
